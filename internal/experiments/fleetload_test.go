package experiments

import (
	"testing"
	"time"

	"icbtc/internal/canister"
	"icbtc/internal/queryfleet"
)

// TestFleetLoadSmoke runs a scaled-down open-loop load comparison end to
// end: the offered rate exceeds the bare fleet's modeled capacity, so the
// layered pass must complete more QPS, the cache and coalescer must
// actually fire, and the baseline pass must never touch either layer.
func TestFleetLoadSmoke(t *testing.T) {
	cfg := FleetLoadConfig{
		Seed:         11,
		Replicas:     2,
		Requests:     150,
		OfferedQPS:   500,
		Addresses:    16,
		ZipfS:        1.5,
		Blocks:       6,
		ExecRate:     5e8,
		PageLimit:    8,
		SlowEvery:    30,
		SlowLimit:    30,
		BurstEvery:   50,
		BurstLen:     10,
		TipMoveEvery: 100 * time.Millisecond,
		CacheEntries: 128,
		Budgets: map[canister.CostClass]queryfleet.Budget{
			canister.CostScan: {Rate: 200, Burst: 50},
		},
		SLO: time.Second,
	}
	res, err := RunFleetLoad(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []FleetLoadPass{res.Baseline, res.Layered} {
		if p.OK == 0 {
			t.Fatalf("%s pass completed zero requests", p.Name)
		}
		if p.OK+p.Shed != p.Requests {
			t.Fatalf("%s pass: %d ok + %d shed != %d requests", p.Name, p.OK, p.Shed, p.Requests)
		}
	}
	if res.Baseline.CacheHits != 0 || res.Baseline.Coalesced != 0 || res.Baseline.Shed != 0 {
		t.Fatalf("baseline pass touched the serving layers: %+v", res.Baseline)
	}
	if res.Layered.CacheHits == 0 {
		t.Fatal("layered pass never hit the hot cache")
	}
	if res.Speedup <= 1 {
		t.Fatalf("serving layers did not beat the saturated bare fleet: speedup %.2fx (baseline %.0f QPS, layered %.0f QPS)",
			res.Speedup, res.Baseline.QPS, res.Layered.QPS)
	}
}

// TestFleetLoadScheduleShape pins the generator's structure: the schedule
// is Zipf-skewed onto a hot head, burst windows compress arrivals onto one
// instant, and the slow-client lane asks full pages.
func TestFleetLoadScheduleShape(t *testing.T) {
	cfg := DefaultFleetLoadConfig()
	cfg.Requests = 1200
	sched := buildFleetLoadSchedule(cfg)
	if len(sched) != cfg.Requests {
		t.Fatalf("schedule has %d entries, want %d", len(sched), cfg.Requests)
	}
	counts := make(map[int]int)
	slow, bursty := 0, 0
	at := make(map[time.Duration]int)
	for _, r := range sched {
		if r.addr >= 0 {
			counts[r.addr]++
		}
		if r.method == "get_utxos" && r.limit == cfg.SlowLimit {
			slow++
		}
		at[r.at]++
	}
	for _, n := range at {
		if n >= cfg.BurstLen {
			bursty++
		}
	}
	if slow == 0 {
		t.Fatal("no slow-client full-page requests in the schedule")
	}
	if bursty == 0 {
		t.Fatalf("no burst window compressed >= %d arrivals onto one instant", cfg.BurstLen)
	}
	// Zipf skew: the single hottest address must draw far more than a
	// uniform share of the traffic.
	top, total := 0, 0
	for _, n := range counts {
		total += n
		if n > top {
			top = n
		}
	}
	if uniform := total / cfg.Addresses; top < 4*uniform {
		t.Fatalf("hottest address drew %d of %d requests; not Zipf-skewed (uniform share %d)", top, total, uniform)
	}
}
