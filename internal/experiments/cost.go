package experiments

import (
	"fmt"
	"io"

	"icbtc/internal/btc"
	"icbtc/internal/canister"
	"icbtc/internal/ic"
)

// CostResult reproduces the in-text cost arithmetic of §IV-B:
//
//	"At the current exchange rate, approximately 35,000 (1,500) requests
//	 for balances (UTXOs) can be made for 1 U.S. dollar."
type CostResult struct {
	// Average metered instructions per request over the population.
	BalanceInstructions, UTXOsInstructions uint64
	// Requests affordable for one U.S. dollar.
	BalancePerUSD, UTXOsPerUSD float64
	// Block ingestion, for the Fig 6 cross-check.
	IngestionInstructions uint64
}

// RunCost measures the average request cost over the skewed population and
// converts it to requests-per-dollar using the cycle price model.
func RunCost(seed int64) (*CostResult, error) {
	f, pop, _, err := loadPopulation(Fig7Config{Scale: 10, UnstableFraction: 0.3, Seed: seed})
	if err != nil {
		return nil, err
	}
	var balSum, utxoSum uint64
	for _, a := range pop.Addresses {
		ctx := f.QueryCtx()
		ctx.Kind = ic.KindUpdate
		if _, err := f.Canister.GetBalance(ctx, canister.GetBalanceArgs{Address: a.Address}); err != nil {
			return nil, err
		}
		balSum += ctx.Meter.Total()

		ctx2 := f.QueryCtx()
		ctx2.Kind = ic.KindUpdate
		if _, err := f.Canister.GetUTXOs(ctx2, canister.GetUTXOsArgs{Address: a.Address}); err != nil {
			return nil, err
		}
		utxoSum += ctx2.Meter.Total()
	}
	n := uint64(len(pop.Addresses))
	res := &CostResult{
		BalanceInstructions: balSum / n,
		UTXOsInstructions:   utxoSum / n,
	}
	// Replicated requests execute on every replica of the subnet; the fee
	// covers all of them (the paper's prices are for replicated calls).
	const replicationFactor = 13
	res.BalancePerUSD = 1.0 / ic.InstructionsToUSD(res.BalanceInstructions*replicationFactor)
	res.UTXOsPerUSD = 1.0 / ic.InstructionsToUSD(res.UTXOsInstructions*replicationFactor)

	// One representative block ingestion for the Fig 6 cross-check (a full
	// block is ~5400 UTXO-set operations).
	script := btc.PayToPubKeyHashScript([20]byte{0x0C})
	for i := 0; i < 8; i++ {
		if _, err := f.FeedBlock([]TxSpec{{Inputs: 0, Outputs: PayN(script, 5400, 546)}}); err != nil {
			return nil, err
		}
	}
	cost, err := f.FeedBlock([]TxSpec{{Inputs: 0, Outputs: PayN(script, 5400, 546)}})
	if err != nil {
		return nil, err
	}
	res.IngestionInstructions = cost.Instructions
	return res, nil
}

// Print renders the comparison with the paper.
func (r *CostResult) Print(w io.Writer) {
	fmt.Fprintln(w, "In-text request cost (§IV-B)")
	fmt.Fprintf(w, "%-36s %14s %12s\n", "metric", "measured", "paper")
	fmt.Fprintf(w, "%-36s %14.1f %12s\n", "avg get_balance instructions [M]", float64(r.BalanceInstructions)/1e6, "-")
	fmt.Fprintf(w, "%-36s %14.1f %12s\n", "avg get_utxos instructions [M]", float64(r.UTXOsInstructions)/1e6, "5.8-476")
	fmt.Fprintf(w, "%-36s %14.0f %12s\n", "balance requests per USD", r.BalancePerUSD, "~35,000")
	fmt.Fprintf(w, "%-36s %14.0f %12s\n", "UTXO requests per USD", r.UTXOsPerUSD, "~1,500")
	fmt.Fprintf(w, "%-36s %14.1f %12s\n", "block ingestion [B instructions]", float64(r.IngestionInstructions)/1e9, "~21.6")
}
