package chain

import (
	"math/big"
	"testing"
	"testing/quick"
	"time"

	"icbtc/internal/btc"
)

// testHeader builds a child header of prev with a distinguishing nonce. The
// regtest "bits" keep work values uniform so confirmation and work depths
// agree unless a test overrides bits.
func testHeader(prev btc.Hash, nonce uint32, bits uint32) btc.BlockHeader {
	return btc.BlockHeader{
		Version:    1,
		PrevBlock:  prev,
		MerkleRoot: btc.DoubleSHA256([]byte{byte(nonce), byte(nonce >> 8), byte(nonce >> 16), byte(nonce >> 24)}),
		Timestamp:  1_600_000_000 + nonce,
		Bits:       bits,
		Nonce:      nonce,
	}
}

func newTestTree(t *testing.T) (*Tree, *btc.Params) {
	t.Helper()
	params := btc.RegtestParams()
	return NewTree(params.GenesisHeader, 0), params
}

// extend inserts a linear chain of n headers on top of from and returns the
// new tip node.
func extend(t *testing.T, tree *Tree, from *Node, n int, nonceBase uint32) *Node {
	t.Helper()
	cur := from
	for i := 0; i < n; i++ {
		h := testHeader(cur.Hash, nonceBase+uint32(i), cur.Header.Bits)
		node, err := tree.Insert(h)
		if err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
		cur = node
	}
	return cur
}

func TestInsertBasics(t *testing.T) {
	tree, _ := newTestTree(t)
	root := tree.Root()
	if root.Height != 0 || tree.MaxHeight() != 0 || tree.Len() != 1 {
		t.Fatal("fresh tree geometry wrong")
	}
	tip := extend(t, tree, root, 3, 100)
	if tip.Height != 3 || tree.MaxHeight() != 3 || tree.Len() != 4 {
		t.Fatalf("height=%d max=%d len=%d", tip.Height, tree.MaxHeight(), tree.Len())
	}
	if !tree.Contains(tip.Hash) || tree.Get(tip.Hash) != tip {
		t.Fatal("lookup failed")
	}
}

func TestInsertRejectsOrphanAndDuplicate(t *testing.T) {
	tree, _ := newTestTree(t)
	var unknown btc.Hash
	unknown[0] = 0xFF
	if _, err := tree.Insert(testHeader(unknown, 1, tree.Root().Header.Bits)); err == nil {
		t.Fatal("orphan accepted")
	}
	h := testHeader(tree.Root().Hash, 2, tree.Root().Header.Bits)
	if _, err := tree.Insert(h); err != nil {
		t.Fatal(err)
	}
	if _, err := tree.Insert(h); err == nil {
		t.Fatal("duplicate accepted")
	}
}

func TestDepthByCountLinearChain(t *testing.T) {
	tree, _ := newTestTree(t)
	tip := extend(t, tree, tree.Root(), 5, 10)
	if d := tree.DepthByCount(tree.Root()); d != 6 {
		t.Fatalf("root depth %d, want 6", d)
	}
	if d := tree.DepthByCount(tip); d != 1 {
		t.Fatalf("tip depth %d, want 1", d)
	}
}

// TestFigure3 reproduces the block tree of Figure 3 in the paper: a 7-block
// main chain (heights h..h+6) with two competing forks, annotated with each
// block's confirmation-based stability.
//
//	main chain:                       7 6 2 2 1 1 1
//	fork A from the block at h+1:       -2 -2 -2     (heights h+2..h+4)
//	fork B from the block at h+3:             -1 -1  (heights h+4..h+5)
//
// The fork rows match the figure exactly (-2 -2 -2 and -1 -1). The paper's
// PDF prints the main row as "7 6 2 1 1 1 2"; that exact digit sequence is
// not realizable for a 7-block chain under Definition II.1 (a tip always has
// d_c = 1, so its stability can never be 2), so the topology above is the
// unique consistent reconstruction. It demonstrates both observations the
// caption makes: stability stagnates while depth grows (the run of 1s), and
// fork blocks have negative stability.
func TestFigure3(t *testing.T) {
	tree, _ := newTestTree(t)
	bits := tree.Root().Header.Bits

	// Main chain: m0..m6 at heights 1..7 (genesis at 0 plays "height h-1";
	// the figure's absolute heights are irrelevant, only the tree shape).
	main := make([]*Node, 7)
	prev := tree.Root()
	for i := range main {
		n, err := tree.Insert(testHeader(prev.Hash, uint32(1000+i), bits))
		if err != nil {
			t.Fatal(err)
		}
		main[i], prev = n, n
	}
	// Fork A: three blocks branching off main[1] (heights of main[2..4]).
	forkA := make([]*Node, 3)
	prev = main[1]
	for i := range forkA {
		n, err := tree.Insert(testHeader(prev.Hash, uint32(2000+i), bits))
		if err != nil {
			t.Fatal(err)
		}
		forkA[i], prev = n, n
	}
	// Fork B: two blocks branching off main[3] (heights of main[4..5]).
	forkB := make([]*Node, 2)
	prev = main[3]
	for i := range forkB {
		n, err := tree.Insert(testHeader(prev.Hash, uint32(3000+i), bits))
		if err != nil {
			t.Fatal(err)
		}
		forkB[i], prev = n, n
	}

	wantMain := []int64{7, 6, 2, 2, 1, 1, 1}
	for i, n := range main {
		if got := tree.StabilityByCount(n); got != wantMain[i] {
			t.Errorf("main[%d]: stability %d, want %d", i, got, wantMain[i])
		}
	}
	for i, n := range forkA {
		if got := tree.StabilityByCount(n); got != -2 {
			t.Errorf("forkA[%d]: stability %d, want -2", i, got)
		}
	}
	for i, n := range forkB {
		if got := tree.StabilityByCount(n); got != -1 {
			t.Errorf("forkB[%d]: stability %d, want -1", i, got)
		}
	}
}

func TestStabilityUniqueAtHeight(t *testing.T) {
	// Definition II.1 implies at most one δ-stable block per height for δ>0.
	tree, _ := newTestTree(t)
	bits := tree.Root().Header.Bits
	a, err := tree.Insert(testHeader(tree.Root().Hash, 1, bits))
	if err != nil {
		t.Fatal(err)
	}
	b, err := tree.Insert(testHeader(tree.Root().Hash, 2, bits))
	if err != nil {
		t.Fatal(err)
	}
	extend(t, tree, a, 3, 50)
	extend(t, tree, b, 2, 60)
	for delta := int64(1); delta <= 5; delta++ {
		stableCount := 0
		for _, n := range tree.AtHeight(1) {
			if tree.IsCountStable(n, delta) {
				stableCount++
			}
		}
		if stableCount > 1 {
			t.Fatalf("δ=%d: %d stable blocks at height 1", delta, stableCount)
		}
	}
}

func TestQuickStabilityUniqueness(t *testing.T) {
	// Property: for random trees, at most one block per height is δ-stable
	// for any δ ≥ 1, and δ-stable implies δ'-stable for δ' ≤ δ.
	f := func(seed int64) bool {
		tree := NewTree(btc.RegtestParams().GenesisHeader, 0)
		bits := tree.Root().Header.Bits
		nodes := []*Node{tree.Root()}
		s := seed
		next := func(mod int) int {
			s = s*6364136223846793005 + 1442695040888963407
			v := int(uint64(s) >> 33)
			return v % mod
		}
		for i := 0; i < 25; i++ {
			parent := nodes[next(len(nodes))]
			n, err := tree.Insert(testHeader(parent.Hash, uint32(10_000+i), bits))
			if err != nil {
				return false
			}
			nodes = append(nodes, n)
		}
		for h := int64(0); h <= tree.MaxHeight(); h++ {
			for delta := int64(1); delta <= 4; delta++ {
				count := 0
				for _, n := range tree.AtHeight(h) {
					if tree.IsCountStable(n, delta) {
						count++
						// monotonicity
						for d2 := int64(1); d2 < delta; d2++ {
							if !tree.IsCountStable(n, d2) {
								return false
							}
						}
					}
				}
				if count > 1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestDepthByWorkAndWorkStability(t *testing.T) {
	tree, _ := newTestTree(t)
	bits := tree.Root().Header.Bits
	work := btc.WorkForBits(bits)
	tip := extend(t, tree, tree.Root(), 4, 500)
	_ = tip

	// Root depth-by-work = 5 * per-block work (uniform difficulty).
	want := new(big.Int).Mul(work, big.NewInt(5))
	if got := tree.DepthByWork(tree.Root()); got.Cmp(want) != 0 {
		t.Fatalf("root d_w = %v, want %v", got, want)
	}

	// With uniform difficulty, work stability relative to the genesis block's
	// own work equals confirmation stability.
	child := tree.AtHeight(1)[0]
	rel := tree.WorkStabilityRelativeTo(child, work)
	if rel.Cmp(new(big.Rat).SetInt64(4)) != 0 {
		t.Fatalf("work stability %v, want 4", rel)
	}
	if !tree.IsWorkStable(child, 4, work) || tree.IsWorkStable(child, 5, work) {
		t.Fatal("IsWorkStable threshold wrong")
	}
}

func TestWorkStabilityWithCompetingFork(t *testing.T) {
	tree, _ := newTestTree(t)
	bits := tree.Root().Header.Bits
	work := btc.WorkForBits(bits)
	a, _ := tree.Insert(testHeader(tree.Root().Hash, 1, bits))
	b, _ := tree.Insert(testHeader(tree.Root().Hash, 2, bits))
	extend(t, tree, a, 5, 100) // a's branch: depth 6
	extend(t, tree, b, 3, 200) // b's branch: depth 4
	// Gap = 2 blocks of work -> stability 2 relative to per-block work.
	rel := tree.WorkStabilityRelativeTo(a, work)
	if rel.Cmp(new(big.Rat).SetInt64(2)) != 0 {
		t.Fatalf("work stability %v, want 2", rel)
	}
}

func TestTipAndCurrentChain(t *testing.T) {
	tree, _ := newTestTree(t)
	bits := tree.Root().Header.Bits
	a, _ := tree.Insert(testHeader(tree.Root().Hash, 1, bits))
	b, _ := tree.Insert(testHeader(tree.Root().Hash, 2, bits))
	tipA := extend(t, tree, a, 4, 100)
	extend(t, tree, b, 2, 200)

	if tip := tree.Tip(); tip != tipA {
		t.Fatalf("tip = %v, want %v", tip.Hash, tipA.Hash)
	}
	cur := tree.CurrentChain()
	if len(cur) != 6 { // genesis + a + 4
		t.Fatalf("chain length %d, want 6", len(cur))
	}
	if cur[0] != tree.Root() || cur[len(cur)-1] != tipA {
		t.Fatal("chain endpoints wrong")
	}
	for i := 1; i < len(cur); i++ {
		if cur[i].Parent() != cur[i-1] {
			t.Fatal("chain not parent-linked")
		}
	}
}

func TestTipDeterministicTieBreak(t *testing.T) {
	tree, _ := newTestTree(t)
	bits := tree.Root().Header.Bits
	tree.Insert(testHeader(tree.Root().Hash, 1, bits))
	tree.Insert(testHeader(tree.Root().Hash, 2, bits))
	t1 := tree.Tip()
	t2 := tree.Tip()
	if t1 != t2 {
		t.Fatal("tie break not deterministic")
	}
}

func TestBFSOrderDeterministic(t *testing.T) {
	tree, _ := newTestTree(t)
	bits := tree.Root().Header.Bits
	a, _ := tree.Insert(testHeader(tree.Root().Hash, 1, bits))
	tree.Insert(testHeader(tree.Root().Hash, 2, bits))
	extend(t, tree, a, 2, 100)

	collect := func() []btc.Hash {
		var order []btc.Hash
		tree.BFSFrom(tree.Root(), func(n *Node) bool {
			order = append(order, n.Hash)
			return true
		})
		return order
	}
	o1, o2 := collect(), collect()
	if len(o1) != tree.Len() {
		t.Fatalf("BFS visited %d of %d", len(o1), tree.Len())
	}
	for i := range o1 {
		if o1[i] != o2[i] {
			t.Fatal("BFS order not deterministic")
		}
	}
	// Heights must be non-decreasing in BFS order.
	lastH := int64(-1)
	for _, h := range o1 {
		n := tree.Get(h)
		if n.Height < lastH {
			t.Fatal("BFS order violates level order")
		}
		lastH = n.Height
	}
}

func TestBFSEarlyStop(t *testing.T) {
	tree, _ := newTestTree(t)
	extend(t, tree, tree.Root(), 5, 100)
	count := 0
	tree.BFSFrom(tree.Root(), func(n *Node) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Fatalf("visited %d, want 3", count)
	}
}

func TestReroot(t *testing.T) {
	tree, _ := newTestTree(t)
	bits := tree.Root().Header.Bits
	a, _ := tree.Insert(testHeader(tree.Root().Hash, 1, bits))
	b, _ := tree.Insert(testHeader(tree.Root().Hash, 2, bits))
	tipA := extend(t, tree, a, 3, 100)
	extend(t, tree, b, 2, 200)

	if err := tree.Reroot(a); err != nil {
		t.Fatal(err)
	}
	if tree.Root() != a || a.Parent() != nil {
		t.Fatal("root not updated")
	}
	if tree.Contains(b.Hash) {
		t.Fatal("competing branch survived reroot")
	}
	if !tree.Contains(tipA.Hash) {
		t.Fatal("descendant lost in reroot")
	}
	if tree.Len() != 5 { // a + 3 descendants... a + 3 = 4? a plus chain of 3 = 4
		// a itself + 3 extension blocks = 4 nodes.
		if tree.Len() != 4 {
			t.Fatalf("len %d after reroot", tree.Len())
		}
	}
	// Rerooting at a node from the discarded branch must fail.
	if err := tree.Reroot(b); err == nil {
		t.Fatal("reroot at removed node accepted")
	}
}

func TestAncestorsAndTips(t *testing.T) {
	tree, _ := newTestTree(t)
	tip := extend(t, tree, tree.Root(), 3, 100)
	anc := tree.Ancestors(tip)
	if len(anc) != 4 || anc[0] != tree.Root() || anc[3] != tip {
		t.Fatal("ancestors wrong")
	}
	tips := tree.Tips()
	if len(tips) != 1 || tips[0] != tip {
		t.Fatal("tips wrong")
	}
}

func TestValidateHeader(t *testing.T) {
	params := btc.RegtestParams()
	tree := NewTree(params.GenesisHeader, 0)
	now := time.Unix(1_700_000_000, 0)

	good := testHeader(tree.Root().Hash, 1, params.PowLimitBits)
	good.Timestamp = 1_699_999_999
	// Regtest bits admit nearly every hash, so PoW should pass as-is; if this
	// particular nonce fails, grind a few.
	for n := uint32(1); !btc.HashMeetsTarget(good.BlockHash(), good.Bits); n++ {
		good.Nonce = n
	}
	if err := ValidateHeader(&good, tree.Root(), params, now); err != nil {
		t.Fatalf("valid header rejected: %v", err)
	}

	badBits := good
	badBits.Bits = 0x1b000001
	if err := ValidateHeader(&badBits, tree.Root(), params, now); err == nil {
		t.Fatal("wrong bits accepted")
	}

	badTime := good
	badTime.Timestamp = tree.Root().Header.Timestamp // not after MTP
	if err := ValidateHeader(&badTime, tree.Root(), params, now); err == nil {
		t.Fatal("stale timestamp accepted")
	}

	future := good
	future.Timestamp = uint32(now.Unix()) + 3*3600
	if err := ValidateHeader(&future, tree.Root(), params, now); err == nil {
		t.Fatal("future timestamp accepted")
	}

	if err := ValidateHeader(nil, tree.Root(), params, now); err == nil {
		t.Fatal("nil header accepted")
	}
	if err := ValidateHeader(&good, nil, params, now); err == nil {
		t.Fatal("nil parent accepted")
	}
}

func TestValidateBlock(t *testing.T) {
	coinbase := &btc.Transaction{
		Inputs:  []btc.TxIn{{PreviousOutPoint: btc.OutPoint{TxID: btc.ZeroHash, Vout: 0xffffffff}}},
		Outputs: []btc.TxOut{{Value: 50 * btc.SatoshiPerBitcoin}},
	}
	blk := &btc.Block{Transactions: []*btc.Transaction{coinbase}}
	blk.Header.MerkleRoot = blk.MerkleRoot()
	if err := ValidateBlock(blk); err != nil {
		t.Fatalf("valid block rejected: %v", err)
	}

	if err := ValidateBlock(nil); err == nil {
		t.Fatal("nil block accepted")
	}
	if err := ValidateBlock(&btc.Block{}); err == nil {
		t.Fatal("empty block accepted")
	}

	badRoot := &btc.Block{Transactions: []*btc.Transaction{coinbase}}
	if err := ValidateBlock(badRoot); err == nil {
		t.Fatal("merkle mismatch accepted")
	}

	noCB := &btc.Block{Transactions: []*btc.Transaction{{
		Inputs:  []btc.TxIn{{PreviousOutPoint: btc.OutPoint{TxID: btc.DoubleSHA256([]byte("x"))}}},
		Outputs: []btc.TxOut{{Value: 1}},
	}}}
	noCB.Header.MerkleRoot = noCB.MerkleRoot()
	if err := ValidateBlock(noCB); err == nil {
		t.Fatal("block without coinbase accepted")
	}

	twoCB := &btc.Block{Transactions: []*btc.Transaction{coinbase, {
		Inputs:  []btc.TxIn{{PreviousOutPoint: btc.OutPoint{TxID: btc.ZeroHash, Vout: 0xffffffff}}},
		Outputs: []btc.TxOut{{Value: 2}},
	}}}
	twoCB.Header.MerkleRoot = twoCB.MerkleRoot()
	if err := ValidateBlock(twoCB); err == nil {
		t.Fatal("duplicate coinbase accepted")
	}
}

// Property: with uniform difficulty, work-based stability measured relative
// to the per-block work coincides with confirmation-based stability on
// every node of a random tree (d_w = d_c · w when all blocks carry equal
// work, so Definition II.1 instantiates identically).
func TestQuickWorkAndCountStabilityAgree(t *testing.T) {
	f := func(seed int64) bool {
		tree := NewTree(btc.RegtestParams().GenesisHeader, 0)
		bits := tree.Root().Header.Bits
		perBlock := btc.WorkForBits(bits)
		nodes := []*Node{tree.Root()}
		s := seed
		next := func(mod int) int {
			s = s*2862933555777941757 + 3037000493
			return int(uint64(s)>>33) % mod
		}
		for i := 0; i < 20; i++ {
			parent := nodes[next(len(nodes))]
			n, err := tree.Insert(testHeader(parent.Hash, uint32(40_000+i), bits))
			if err != nil {
				return false
			}
			nodes = append(nodes, n)
		}
		for _, n := range nodes {
			count := tree.StabilityByCount(n)
			rel := tree.WorkStabilityRelativeTo(n, perBlock)
			if rel.Cmp(new(big.Rat).SetInt64(count)) != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: the current chain is always a root-to-leaf path whose
// cumulative work is maximal among all leaves.
func TestQuickCurrentChainMaximal(t *testing.T) {
	f := func(seed int64) bool {
		tree := NewTree(btc.RegtestParams().GenesisHeader, 0)
		bits := tree.Root().Header.Bits
		nodes := []*Node{tree.Root()}
		s := seed
		next := func(mod int) int {
			s = s*6364136223846793005 + 1442695040888963407
			return int(uint64(s)>>33) % mod
		}
		for i := 0; i < 24; i++ {
			parent := nodes[next(len(nodes))]
			n, err := tree.Insert(testHeader(parent.Hash, uint32(50_000+i), bits))
			if err != nil {
				return false
			}
			nodes = append(nodes, n)
		}
		cur := tree.CurrentChain()
		if cur[0] != tree.Root() {
			return false
		}
		tip := cur[len(cur)-1]
		if len(tip.Children()) != 0 {
			return false
		}
		for _, leaf := range tree.Tips() {
			if leaf.CumulativeWork.Cmp(tip.CumulativeWork) > 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
