package chain

import (
	"errors"
	"fmt"
	"math/big"
	"time"

	"icbtc/internal/btc"
)

// Header validation shared by the Bitcoin adapter (§III-B) and the Bitcoin
// canister (§III-C), which performs "the same checks on the block headers as
// the Bitcoin adapter":
//
//  1. the header is well-formed,
//  2. hashPrevBlock points to a locally available header,
//  3. the Bits field contains the correct difficulty target,
//  4. the block header hash satisfies this target, and
//  5. the Time field contains a valid block timestamp.

// Validation errors.
var (
	ErrBadPoW       = errors.New("chain: header hash does not satisfy its target")
	ErrBadBits      = errors.New("chain: header bits do not match expected difficulty")
	ErrBadTimestamp = errors.New("chain: invalid header timestamp")
)

// ExpectedBits returns the difficulty target a header extending parent must
// carry. Inside a retarget window the child reuses the parent's bits; at a
// window boundary the target is retargeted by the ratio of actual to
// intended timespan, clamped to [1/4, 4] as in Bitcoin, and never easier
// than the network's proof-of-work limit. Networks with
// DifficultyAdjustmentWindow <= 0 (regtest) never retarget.
func ExpectedBits(parent *Node, params *btc.Params) uint32 {
	if parent == nil {
		return params.PowLimitBits
	}
	window := int64(params.DifficultyAdjustmentWindow)
	if window <= 0 || (parent.Height+1)%window != 0 {
		return parent.Header.Bits
	}
	// Walk back to the first block of the closing window.
	first := parent
	for i := int64(0); i < window-1 && first.Parent() != nil; i++ {
		first = first.Parent()
	}
	actual := int64(parent.Header.Timestamp) - int64(first.Header.Timestamp)
	target := int64(params.TargetBlockInterval/time.Second) * (window - 1)
	if target <= 0 {
		return parent.Header.Bits
	}
	// Clamp the adjustment factor to [1/4, 4].
	if actual < target/4 {
		actual = target / 4
	}
	if actual > target*4 {
		actual = target * 4
	}
	oldTarget := btc.CompactToBig(parent.Header.Bits)
	newTarget := new(big.Int).Mul(oldTarget, big.NewInt(actual))
	newTarget.Div(newTarget, big.NewInt(target))
	limit := btc.CompactToBig(params.PowLimitBits)
	if newTarget.Cmp(limit) > 0 {
		newTarget.Set(limit)
	}
	if newTarget.Sign() <= 0 {
		newTarget.SetInt64(1)
	}
	return btc.BigToCompact(newTarget)
}

// ValidateHeader performs the full §III-B header check for a header whose
// predecessor node is parent (which must be non-nil; orphan checks happen at
// insertion). now anchors the future-timestamp bound.
func ValidateHeader(header *btc.BlockHeader, parent *Node, params *btc.Params, now time.Time) error {
	if header == nil {
		return errors.New("chain: nil header")
	}
	if parent == nil {
		return ErrOrphan
	}
	if want := ExpectedBits(parent, params); header.Bits != want {
		return fmt.Errorf("%w: got 0x%08x, want 0x%08x", ErrBadBits, header.Bits, want)
	}
	if !btc.HashMeetsTarget(header.BlockHash(), header.Bits) {
		return fmt.Errorf("%w: %s", ErrBadPoW, header.BlockHash())
	}
	mtp := medianTimePastOf(parent)
	if err := btc.ValidateTimestamp(header.Timestamp, mtp, now); err != nil {
		return fmt.Errorf("%w: %v", ErrBadTimestamp, err)
	}
	return nil
}

// medianTimePastOf returns the median of the timestamp window ending at n.
// The window is cached on the node at insertion time (see Node.tsWindow) so
// the value is identical on trees that have been rerooted at an anchor.
func medianTimePastOf(n *Node) uint32 {
	return btc.MedianTimePast(n.tsWindow)
}

// ValidateBlock performs the Bitcoin canister's block checks of §III-C: the
// block must be well-formed, its header must be valid (caller's concern),
// and the Merkle tree root of the transactions must match the header.
// Transaction spend conditions are deliberately NOT verified (the canister
// "relies on the proof of work that goes into the blocks").
func ValidateBlock(block *btc.Block) error {
	if block == nil {
		return errors.New("chain: nil block")
	}
	if len(block.Transactions) == 0 {
		return errors.New("chain: block has no transactions")
	}
	if !block.Transactions[0].IsCoinbase() {
		return errors.New("chain: first transaction is not a coinbase")
	}
	for i, tx := range block.Transactions[1:] {
		if tx.IsCoinbase() {
			return fmt.Errorf("chain: transaction %d is an extra coinbase", i+1)
		}
	}
	if got := block.MerkleRoot(); got != block.Header.MerkleRoot {
		return fmt.Errorf("chain: merkle root mismatch: computed %s, header %s", got, block.Header.MerkleRoot)
	}
	return nil
}
