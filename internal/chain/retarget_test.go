package chain

import (
	"math/big"
	"testing"
	"time"

	"icbtc/internal/btc"
)

// retargetParams builds a network that retargets every 4 blocks with a 10s
// target interval, easy enough to mine in tests.
func retargetParams() *btc.Params {
	p := btc.RegtestParams()
	p.DifficultyAdjustmentWindow = 4
	p.TargetBlockInterval = 10 * time.Second
	return p
}

// mineChild grinds a header extending parent with the expected bits and the
// given timestamp.
func mineChild(t *testing.T, tree *Tree, parent *Node, params *btc.Params, ts uint32) *Node {
	t.Helper()
	h := btc.BlockHeader{
		Version:    1,
		PrevBlock:  parent.Hash,
		MerkleRoot: btc.DoubleSHA256([]byte{byte(ts), byte(ts >> 8), byte(ts >> 16), byte(ts >> 24)}),
		Timestamp:  ts,
		Bits:       ExpectedBits(parent, params),
	}
	for nonce := uint32(0); ; nonce++ {
		h.Nonce = nonce
		if btc.HashMeetsTarget(h.BlockHash(), h.Bits) {
			break
		}
		if nonce > 1<<24 {
			t.Fatal("PoW search exhausted")
		}
	}
	if err := ValidateHeader(&h, parent, params, time.Unix(int64(ts)+60, 0)); err != nil {
		t.Fatalf("mined header invalid: %v", err)
	}
	n, err := tree.Insert(h)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestRetargetHardensOnFastBlocks(t *testing.T) {
	params := retargetParams()
	tree := NewTree(params.GenesisHeader, 0)
	cur := tree.Root()
	ts := params.GenesisHeader.Timestamp
	// Blocks arriving every 1s against a 10s target: at the boundary the
	// target must shrink (difficulty up).
	for i := 0; i < 4; i++ {
		ts += 1
		cur = mineChild(t, tree, cur, params, ts)
	}
	oldTarget := btc.CompactToBig(params.GenesisHeader.Bits)
	newTarget := btc.CompactToBig(cur.Header.Bits)
	if newTarget.Cmp(oldTarget) >= 0 {
		t.Fatalf("target did not shrink: %x -> %x", oldTarget, newTarget)
	}
	// Work per block must have increased correspondingly.
	if cur.Work.Cmp(tree.Root().Work) <= 0 {
		t.Fatal("per-block work did not increase")
	}
}

func TestRetargetEasesOnSlowBlocksAndClampsAtLimit(t *testing.T) {
	params := retargetParams()
	tree := NewTree(params.GenesisHeader, 0)
	cur := tree.Root()
	ts := params.GenesisHeader.Timestamp
	// Genesis already sits at the pow limit; slow blocks cannot ease
	// beyond it, so bits must stay at the limit.
	for i := 0; i < 4; i++ {
		ts += 1000
		cur = mineChild(t, tree, cur, params, ts)
	}
	if cur.Header.Bits != params.PowLimitBits {
		t.Fatalf("eased past the pow limit: 0x%08x", cur.Header.Bits)
	}
}

func TestRetargetClampFactor(t *testing.T) {
	// Extremely fast blocks: the adjustment is clamped to 4x per window.
	params := retargetParams()
	tree := NewTree(params.GenesisHeader, 0)
	cur := tree.Root()
	ts := params.GenesisHeader.Timestamp
	for i := 0; i < 4; i++ {
		ts += 1 // 30x faster than target
		cur = mineChild(t, tree, cur, params, ts)
	}
	oldTarget := btc.CompactToBig(params.GenesisHeader.Bits)
	newTarget := btc.CompactToBig(cur.Header.Bits)
	// Clamp: difficulty rises at most ~4x per window (integer division of
	// the clamped timespan makes it marginally more than 4, e.g. 30/4 = 7
	// seconds → factor 30/7; bound with old/5).
	fifth := oldTarget.Div(oldTarget, bigInt5())
	if newTarget.Cmp(fifth) < 0 {
		t.Fatalf("adjustment exceeded the clamp: %x < %x", newTarget, fifth)
	}
}

func TestWrongRetargetBitsRejected(t *testing.T) {
	params := retargetParams()
	tree := NewTree(params.GenesisHeader, 0)
	cur := tree.Root()
	ts := params.GenesisHeader.Timestamp
	for i := 0; i < 3; i++ {
		ts += 1
		cur = mineChild(t, tree, cur, params, ts)
	}
	// Block 4 must retarget; presenting the old bits is invalid.
	h := btc.BlockHeader{
		Version:   1,
		PrevBlock: cur.Hash,
		Timestamp: ts + 1,
		Bits:      cur.Header.Bits, // stale: boundary demands retarget
	}
	if err := ValidateHeader(&h, cur, params, time.Unix(int64(ts)+60, 0)); err == nil {
		t.Fatal("stale bits accepted at a retarget boundary")
	}
}

func TestNoRetargetOnRegtest(t *testing.T) {
	params := btc.RegtestParams() // window 0: never retargets
	tree := NewTree(params.GenesisHeader, 0)
	cur := tree.Root()
	ts := params.GenesisHeader.Timestamp
	for i := 0; i < 8; i++ {
		ts += 1
		cur = mineChild(t, tree, cur, params, ts)
		if cur.Header.Bits != params.PowLimitBits {
			t.Fatal("regtest retargeted")
		}
	}
}

func bigInt5() *big.Int { return big.NewInt(5) }
