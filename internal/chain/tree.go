// Package chain implements the block-tree machinery of §II-B and the novel
// stability concepts of §II-C of the paper: heights, the two depth functions
// d_c (confirmation counting) and d_w (cumulative hash work), δ-stability
// (Definition II.1), and current-chain selection.
//
// The package operates on block headers only; blocks themselves are handled
// by the adapter and the Bitcoin canister, which both embed a *Tree.
package chain

import (
	"errors"
	"fmt"
	"math/big"
	"sort"

	"icbtc/internal/btc"
)

// Node is a header in the block tree together with its tree metadata.
type Node struct {
	Header btc.BlockHeader
	Hash   btc.Hash
	Height int64
	// Work is w(b): the expected hash work for this block's target.
	Work *big.Int
	// CumulativeWork is the total work on the path from the root to this
	// node inclusive (used for chain selection shortcuts).
	CumulativeWork *big.Int

	// tsWindow caches the timestamps of the up-to-11 chain blocks ending at
	// this node, so median-time-past stays correct after the tree is
	// rerooted (ancestors below the new root are gone but their timestamps
	// must still anchor the MTP rule).
	tsWindow []uint32

	// aux is an opaque per-node attachment owned by the tree's embedder.
	// The Bitcoin canister stores a block's address-indexed UTXO delta here
	// so its read path can merge per-block effects without rescanning
	// blocks; because the attachment lives on the node, pruning a subtree
	// (Reroot) discards stale deltas together with their headers.
	aux any

	parent   *Node
	children []*Node
}

// SetAux attaches an opaque per-node value (nil clears it).
func (n *Node) SetAux(v any) { n.aux = v }

// Aux returns the node's attachment, or nil.
func (n *Node) Aux() any { return n.aux }

// Parent returns the node's parent, or nil for the root.
func (n *Node) Parent() *Node { return n.parent }

// TimestampWindow returns a copy of the node's median-time-past window: the
// timestamps of the up-to-11 chain blocks ending at this node, including
// timestamps of ancestors a Reroot may since have pruned. Snapshots persist
// the root's window so a restored tree validates header timestamps exactly
// like the original (see NewTreeWithWindow).
func (n *Node) TimestampWindow() []uint32 {
	out := make([]uint32, len(n.tsWindow))
	copy(out, n.tsWindow)
	return out
}

// Children returns the successors succ(b). The returned slice is shared;
// callers must not mutate it.
func (n *Node) Children() []*Node { return n.children }

// Tree is a rooted tree of block headers. The root is typically the genesis
// header (in the adapter) or the current anchor (in the Bitcoin canister).
type Tree struct {
	root  *Node
	nodes map[btc.Hash]*Node
	// byHeight indexes nodes by height for stability queries.
	byHeight map[int64][]*Node
	maxH     int64
}

// Well-known errors returned by Insert.
var (
	ErrOrphan    = errors.New("chain: header's predecessor is not in the tree")
	ErrDuplicate = errors.New("chain: header already in the tree")
)

// NewTree creates a tree rooted at the given header with the given height.
func NewTree(root btc.BlockHeader, height int64) *Tree {
	return NewTreeWithWindow(root, height, nil)
}

// NewTreeWithWindow creates a tree rooted at the given header with an
// explicit median-time-past window (the up-to-11 timestamps of the chain
// ending at the root). A rerooted tree's root carries timestamps of
// ancestors that have been pruned; restoring a tree from a snapshot must
// reinstate that window or MTP validation of future headers would diverge
// from a never-restarted replica. An empty window falls back to the root's
// own timestamp (a genesis root).
func NewTreeWithWindow(root btc.BlockHeader, height int64, window []uint32) *Tree {
	work := btc.WorkForBits(root.Bits)
	ts := make([]uint32, 0, 11)
	if len(window) == 0 {
		ts = append(ts, root.Timestamp)
	} else {
		ts = append(ts, window...)
	}
	rn := &Node{
		Header:         root,
		Hash:           root.BlockHash(),
		Height:         height,
		Work:           work,
		CumulativeWork: new(big.Int).Set(work),
		tsWindow:       ts,
	}
	t := &Tree{
		root:     rn,
		nodes:    map[btc.Hash]*Node{rn.Hash: rn},
		byHeight: map[int64][]*Node{height: {rn}},
		maxH:     height,
	}
	return t
}

// Root returns the tree's root node.
func (t *Tree) Root() *Node { return t.root }

// Len returns the number of headers in the tree.
func (t *Tree) Len() int { return len(t.nodes) }

// MaxHeight returns the greatest height of any header in the tree.
func (t *Tree) MaxHeight() int64 { return t.maxH }

// Get returns the node for a header hash, or nil.
func (t *Tree) Get(h btc.Hash) *Node { return t.nodes[h] }

// Contains reports whether the tree holds the header with the given hash.
func (t *Tree) Contains(h btc.Hash) bool { return t.nodes[h] != nil }

// AtHeight returns all nodes at a height. The returned slice is shared.
func (t *Tree) AtHeight(h int64) []*Node { return t.byHeight[h] }

// Insert adds a header whose predecessor must already be in the tree.
func (t *Tree) Insert(header btc.BlockHeader) (*Node, error) {
	hash := header.BlockHash()
	if t.nodes[hash] != nil {
		return nil, fmt.Errorf("%w: %s", ErrDuplicate, hash)
	}
	parent := t.nodes[header.PrevBlock]
	if parent == nil {
		return nil, fmt.Errorf("%w: %s (prev %s)", ErrOrphan, hash, header.PrevBlock)
	}
	work := btc.WorkForBits(header.Bits)
	window := make([]uint32, 0, 11)
	if len(parent.tsWindow) >= 11 {
		window = append(window, parent.tsWindow[len(parent.tsWindow)-10:]...)
	} else {
		window = append(window, parent.tsWindow...)
	}
	window = append(window, header.Timestamp)
	n := &Node{
		Header:         header,
		Hash:           hash,
		Height:         parent.Height + 1,
		Work:           work,
		CumulativeWork: new(big.Int).Add(parent.CumulativeWork, work),
		tsWindow:       window,
		parent:         parent,
	}
	parent.children = append(parent.children, n)
	t.nodes[hash] = n
	t.byHeight[n.Height] = append(t.byHeight[n.Height], n)
	if n.Height > t.maxH {
		t.maxH = n.Height
	}
	return n, nil
}

// DepthByCount computes d_c(b): the maximum number of blocks (counting b
// itself) on any path from b to a connected tip. This is the confirmation
// depth: a transaction in b has d_c(b) confirmations when b is on the chain.
func (t *Tree) DepthByCount(n *Node) int64 {
	if n == nil {
		return 0
	}
	best := int64(0)
	for _, c := range n.children {
		if d := t.DepthByCount(c); d > best {
			best = d
		}
	}
	return best + 1
}

// DepthByWork computes d_w(b): the maximum cumulative hash work on any path
// from b to a connected tip, including b's own work.
func (t *Tree) DepthByWork(n *Node) *big.Int {
	if n == nil {
		return new(big.Int)
	}
	best := new(big.Int)
	for _, c := range n.children {
		if d := t.DepthByWork(c); d.Cmp(best) > 0 {
			best = d
		}
	}
	return best.Add(best, n.Work)
}

// StabilityByCount returns the confirmation-based stability of node n: the
// largest δ for which n is δ-stable under d_c, which by Definition II.1 is
//
//	min( d_c(n), min over siblings b' at the same height of d_c(n)-d_c(b') ).
//
// The value is negative when a competing block at the same height is deeper,
// exactly as in Figure 3 of the paper.
func (t *Tree) StabilityByCount(n *Node) int64 {
	if n == nil {
		return 0
	}
	own := t.DepthByCount(n)
	stability := own
	for _, other := range t.byHeight[n.Height] {
		if other == n {
			continue
		}
		if gap := own - t.DepthByCount(other); gap < stability {
			stability = gap
		}
	}
	return stability
}

// IsCountStable reports whether n is δ-stable under d_c (Definition II.1).
func (t *Tree) IsCountStable(n *Node, delta int64) bool {
	if delta <= 0 {
		return true
	}
	return t.StabilityByCount(n) >= delta
}

// WorkStabilityRelativeTo returns the difficulty-based stability of n
// expressed relative to the work of reference block ref, i.e. the largest δ
// such that n is difficulty-based δ-stable with respect to ref:
//
//	min( d_w(n), min gap to same-height competitors ) / w(ref)
//
// following §II-C's normalization d_w(b)/w(b*). The result is a rational
// value; the integer floor is returned along with the exact numerator for
// callers that need precision.
func (t *Tree) WorkStabilityRelativeTo(n *Node, refWork *big.Int) *big.Rat {
	if n == nil || refWork == nil || refWork.Sign() <= 0 {
		return new(big.Rat)
	}
	own := t.DepthByWork(n)
	minVal := new(big.Int).Set(own)
	for _, other := range t.byHeight[n.Height] {
		if other == n {
			continue
		}
		gap := new(big.Int).Sub(own, t.DepthByWork(other))
		if gap.Cmp(minVal) < 0 {
			minVal.Set(gap)
		}
	}
	return new(big.Rat).SetFrac(minVal, refWork)
}

// IsWorkStable reports whether n is difficulty-based δ-stable with respect
// to a reference work value: d_w(n)/w(ref) ≥ δ and the same-height dominance
// condition holds with margin δ·w(ref).
func (t *Tree) IsWorkStable(n *Node, delta int64, refWork *big.Int) bool {
	if n == nil {
		return false
	}
	threshold := new(big.Rat).SetInt64(delta)
	return t.WorkStabilityRelativeTo(n, refWork).Cmp(threshold) >= 0
}

// Tip returns the tip of the current blockchain: the leaf that maximizes
// cumulative work from the root (ties broken by lower hash for determinism,
// which every replica computes identically).
func (t *Tree) Tip() *Node {
	var best *Node
	for _, n := range t.nodes {
		if len(n.children) != 0 {
			continue
		}
		if best == nil || n.CumulativeWork.Cmp(best.CumulativeWork) > 0 ||
			(n.CumulativeWork.Cmp(best.CumulativeWork) == 0 && lessHash(n.Hash, best.Hash)) {
			best = n
		}
	}
	return best
}

// CurrentChain returns the node path from the root to Tip(), inclusive.
func (t *Tree) CurrentChain() []*Node {
	tip := t.Tip()
	if tip == nil {
		return nil
	}
	var rev []*Node
	for n := tip; n != nil; n = n.parent {
		rev = append(rev, n)
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// BFSFrom visits nodes in breadth-first order starting at start (inclusive),
// calling visit for each; visit returning false stops the walk. Children are
// visited in deterministic (hash-sorted) order so that every replica walks
// the tree identically — required for the adapter's Algorithm 1.
func (t *Tree) BFSFrom(start *Node, visit func(*Node) bool) {
	if start == nil {
		return
	}
	queue := []*Node{start}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		if !visit(n) {
			return
		}
		kids := make([]*Node, len(n.children))
		copy(kids, n.children)
		sort.Slice(kids, func(i, j int) bool { return lessHash(kids[i].Hash, kids[j].Hash) })
		queue = append(queue, kids...)
	}
}

// Reroot rebases the tree at newRoot, discarding everything that is not a
// descendant of newRoot. Used by the Bitcoin canister when the anchor
// advances: competing headers below the new anchor are removed while the
// stable chain's header is kept as the new root.
func (t *Tree) Reroot(newRoot *Node) error {
	if t.nodes[newRoot.Hash] != newRoot {
		return errors.New("chain: new root is not in the tree")
	}
	nodes := make(map[btc.Hash]*Node, len(t.nodes))
	byHeight := make(map[int64][]*Node, len(t.byHeight))
	maxH := newRoot.Height
	var walk func(*Node)
	walk = func(n *Node) {
		nodes[n.Hash] = n
		byHeight[n.Height] = append(byHeight[n.Height], n)
		if n.Height > maxH {
			maxH = n.Height
		}
		for _, c := range n.children {
			walk(c)
		}
	}
	newRoot.parent = nil
	walk(newRoot)
	t.root = newRoot
	t.nodes = nodes
	t.byHeight = byHeight
	t.maxH = maxH
	return nil
}

// Ancestors returns the chain of nodes from the root to n inclusive.
func (t *Tree) Ancestors(n *Node) []*Node {
	var rev []*Node
	for cur := n; cur != nil; cur = cur.parent {
		rev = append(rev, cur)
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// Tips returns all leaves of the tree.
func (t *Tree) Tips() []*Node {
	var tips []*Node
	for _, n := range t.nodes {
		if len(n.children) == 0 {
			tips = append(tips, n)
		}
	}
	sort.Slice(tips, func(i, j int) bool { return lessHash(tips[i].Hash, tips[j].Hash) })
	return tips
}

func lessHash(a, b btc.Hash) bool {
	for i := btc.HashSize - 1; i >= 0; i-- {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}
