// Package adapter implements the Bitcoin adapter of §III-B: the sandboxed
// per-node process that connects the IC to the Bitcoin P2P network without
// intermediaries. The adapter
//
//   - discovers Bitcoin nodes starting from hard-coded seeds, collecting
//     addresses until an upper threshold t_u and replenishing below t_l,
//   - maintains ℓ connections to uniformly random Bitcoin nodes,
//   - downloads and validates block headers from genesis (well-formedness,
//     prev-pointer, difficulty bits, proof of work, timestamp) while doing
//     NO fork resolution — any valid header is stored,
//   - fetches blocks on demand and serves them to the Bitcoin canister via
//     Algorithm 1, and
//   - caches outbound transactions for 10 minutes and advertises them to
//     all connected peers.
package adapter

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"icbtc/internal/btc"
	"icbtc/internal/btcnode"
	"icbtc/internal/chain"
	"icbtc/internal/simnet"
)

// Config carries the §III-B parameters.
type Config struct {
	// Connections is ℓ, the number of Bitcoin peers (5 on mainnet).
	Connections int
	// AddrLowWater / AddrHighWater are t_l and t_u.
	AddrLowWater, AddrHighWater int
	// MaxHeaders is MAX_HEADERS, the N-set bound of Algorithm 1 (100).
	MaxHeaders int
	// MaxResponseBytes is MAX_SIZE, the soft block-byte bound (2 MiB).
	MaxResponseBytes int
	// MultiBlockSyncHeight: below this anchor height Algorithm 1 may return
	// many blocks per response (fast initial sync); at or above it, one
	// block per response (the conservative tip behavior, see §IV-A).
	MultiBlockSyncHeight int64
	// TxCacheExpiry is the outbound transaction cache lifetime (10 min).
	TxCacheExpiry time.Duration
	// SyncInterval is how often the adapter polls peers for new headers.
	SyncInterval time.Duration
	// BlockRetryInterval is how long an in-flight getdata may go unanswered
	// before it is re-issued to the current peer set; it is also the base of
	// the exponential retry backoff (doubling per attempt up to
	// RetryBackoffMax, jittered by RetryJitter). A peer that withholds a
	// requested block (or a partition that swallowed the request) must not
	// stall the fetch forever. Zero disables retries.
	BlockRetryInterval time.Duration
	// RetryBackoffMax caps the exponential retry backoff. Zero means no cap.
	RetryBackoffMax time.Duration
	// RetryJitter spreads each retry delay by ±(RetryJitter × delay), drawn
	// from the seeded scheduler RNG, so retries from many requests do not
	// synchronize into bursts.
	RetryJitter float64
	// RequestTimeout is the per-request deadline for getheaders round trips
	// (and the deadline charged against a targeted getdata peer at its first
	// retry). A peer missing the deadline takes a timeout strike. Zero
	// disables deadline tracking.
	RequestTimeout time.Duration
	// PeerBanScore is the health-score threshold at which a peer is put on
	// the cooldown list and rotated out (see peerHealth.score). Zero
	// disables banning.
	PeerBanScore float64
	// PeerCooldown is how long a banned peer stays excluded from the
	// connection draw.
	PeerCooldown time.Duration
	// StallTimeout flips the adapter into the Degraded state when no peer
	// has produced any response for this long. Zero disables the detector.
	StallTimeout time.Duration
}

// ConfigForNetwork returns the production parameters of §III-B for a
// network: t_l/t_u = 500/2000 mainnet, 100/1000 testnet, 1/1 regtest.
func ConfigForNetwork(n btc.Network) Config {
	cfg := Config{
		Connections:        5,
		MaxHeaders:         100,
		MaxResponseBytes:   2 << 20,
		TxCacheExpiry:      10 * time.Minute,
		SyncInterval:       2 * time.Second,
		BlockRetryInterval: 10 * time.Second,
		RetryBackoffMax:    80 * time.Second,
		RetryJitter:        0.2,
		RequestTimeout:     5 * time.Second,
		PeerBanScore:       6,
		PeerCooldown:       60 * time.Second,
		StallTimeout:       6 * time.Second,
	}
	switch n {
	case btc.Mainnet:
		cfg.AddrLowWater, cfg.AddrHighWater = 500, 2000
	case btc.Testnet:
		cfg.AddrLowWater, cfg.AddrHighWater = 100, 1000
	default:
		cfg.AddrLowWater, cfg.AddrHighWater = 1, 1
	}
	return cfg
}

// BlockWithHeader pairs a block with its header, the elements of set B in
// Algorithm 1.
type BlockWithHeader struct {
	Block  *btc.Block
	Header btc.BlockHeader
}

// Request is the Bitcoin canister's update request to the adapter: the
// anchor β*, the set A of header hashes above the anchor whose blocks the
// canister already has, and outbound transactions T.
type Request struct {
	Anchor       btc.BlockHeader
	AnchorHeight int64
	Have         []btc.Hash
	Txs          [][]byte
}

// Response is the adapter's reply: blocks B extending the canister's tree
// and upcoming headers N, plus the adapter's health self-report so the
// canister (and the query fleet behind it) can annotate staleness.
type Response struct {
	Blocks []BlockWithHeader
	Next   []btc.BlockHeader
	Health Health
}

// cachedTx is a transaction awaiting advertisement, with its expiry.
type cachedTx struct {
	tx      *btc.Transaction
	expires time.Time
}

// Adapter is one node's Bitcoin adapter instance.
type Adapter struct {
	ID     simnet.NodeID
	cfg    Config
	params *btc.Params
	net    *simnet.Network
	dir    *btcnode.SeedDirectory

	// addressBook holds collected Bitcoin node addresses.
	addressBook []string
	addrSet     map[string]bool
	// connected holds the current ℓ peer connections.
	connected map[simnet.NodeID]bool

	// tree is B̄_a, the header tree; blocks is B_a.
	tree   *chain.Tree
	blocks map[btc.Hash]*btc.Block
	// requestedBlocks tracks the lifecycle of in-flight getdata requests:
	// attempts, issue counter, last send time, and the targeted peer.
	requestedBlocks map[btc.Hash]*blockRequest
	// headersPending stamps the time of the oldest unanswered getheaders per
	// peer; crossing RequestTimeout charges the peer a timeout strike.
	headersPending map[simnet.NodeID]time.Time
	// peerHealth scores every peer ever interacted with; it survives
	// Stop/Start (knowledge about the network outlives the process restart).
	peerHealth map[simnet.NodeID]*peerHealth

	txCache map[btc.Hash]cachedTx

	// lastResponse is the time any peer last produced a response; the stall
	// detector flips degraded when it falls StallTimeout behind.
	lastResponse time.Time
	degraded     bool

	running bool
	// syncGen invalidates scheduler ticks from superseded sync loops: every
	// Start begins a new generation, so a tick scheduled before a
	// Stop/Start pair cannot resurrect the old loop alongside the new one.
	syncGen int
	// stats
	headersAccepted int
	headersRejected int

	// met is the adapter's obs instrumentation (operational, not part of
	// any snapshot; survives Stop/Start like peerHealth does).
	met *adapterMetrics
}

// New creates an adapter. Call Start to begin discovery and syncing.
func New(id simnet.NodeID, net *simnet.Network, params *btc.Params, dir *btcnode.SeedDirectory, cfg Config) *Adapter {
	a := &Adapter{
		ID:              id,
		cfg:             cfg,
		params:          params,
		net:             net,
		dir:             dir,
		addrSet:         make(map[string]bool),
		connected:       make(map[simnet.NodeID]bool),
		tree:            chain.NewTree(params.GenesisHeader, 0),
		blocks:          make(map[btc.Hash]*btc.Block),
		requestedBlocks: make(map[btc.Hash]*blockRequest),
		headersPending:  make(map[simnet.NodeID]time.Time),
		peerHealth:      make(map[simnet.NodeID]*peerHealth),
		txCache:         make(map[btc.Hash]cachedTx),
		met:             newAdapterMetrics(),
	}
	net.Register(id, a)
	return a
}

// Start launches peer discovery and the periodic header sync loop.
func (a *Adapter) Start() {
	if a.running {
		return
	}
	a.running = true
	a.syncGen++
	a.lastResponse = a.net.Scheduler().Now()
	a.degraded = false
	a.met.stateChanges.With(StateSyncing.String()).Inc()
	a.discover()
	a.syncLoop(a.syncGen)
}

// Stop halts the sync loop (the adapter stays registered; Restart by
// calling Start again). In-flight block requests are forgotten: their
// replies will be discarded by the stopped Receive gate, so they must be
// re-issued after a restart. The sync generation is bumped here as well as
// in Start, so a tick scheduled before Stop is dead on both gates — the
// running flag alone left a window where a stale tick could race a
// not-yet-restarted loop's bookkeeping.
func (a *Adapter) Stop() {
	if a.running {
		a.met.stateChanges.With(StateStopped.String()).Inc()
	}
	a.running = false
	a.syncGen++
	a.requestedBlocks = make(map[btc.Hash]*blockRequest)
	a.headersPending = make(map[simnet.NodeID]time.Time)
	a.degraded = false
}

// Tree exposes the adapter's header tree.
func (a *Adapter) Tree() *chain.Tree { return a.tree }

// ConnectedPeers returns the current peer IDs in sorted order. The order
// matters for more than cosmetics: callers iterate this slice and act per
// peer (drop, reconnect, send), and every simnet send consumes scheduler
// RNG — map iteration order here would leak real-process nondeterminism
// into the seeded simulation.
func (a *Adapter) ConnectedPeers() []simnet.NodeID {
	out := make([]simnet.NodeID, 0, len(a.connected))
	for id := range a.connected {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// HeaderStats returns (accepted, rejected) header counts.
func (a *Adapter) HeaderStats() (int, int) { return a.headersAccepted, a.headersRejected }

// HasBlock reports whether the adapter holds the block for a header hash.
func (a *Adapter) HasBlock(h btc.Hash) bool { return a.blocks[h] != nil }

// AddressBookSize returns the number of collected addresses.
func (a *Adapter) AddressBookSize() int { return len(a.addressBook) }

// discover implements the §III-B discovery process: request addresses from
// seeds until t_u are known, then connect to ℓ uniformly random nodes.
func (a *Adapter) discover() {
	for _, seed := range a.dir.Seeds() {
		a.net.Send(a.ID, seed, btcnode.MsgGetAddr{})
	}
	// Ask already-known peers too (recursive collection).
	for _, addr := range a.addressBook {
		if id, ok := a.dir.Resolve(addr); ok && len(a.addressBook) < a.cfg.AddrHighWater {
			a.net.Send(a.ID, id, btcnode.MsgGetAddr{})
		}
	}
	a.fillConnections()
}

// fillConnections tops up to ℓ random connections from the address book.
func (a *Adapter) fillConnections() {
	a.fillConnectionsExcluding("")
}

// fillConnectionsExcluding tops up to ℓ connections, drawing from the
// book's eligible candidates — resolvable, not self, not already connected.
// Unresolvable and self-resolving entries are dropped from the book (a node
// can learn its own address under a foreign label through gossip).
// Iterating over explicit candidates bounds the loop: the previous
// draw-and-retry scheme spun forever when the book was non-empty but every
// entry resolved to self or an existing connection.
//
// Candidates are ranked by health score: peers on the cooldown list are
// skipped entirely (unless nothing else remains — staying dark is worse),
// and the random draw is restricted to the best-scoring half, so a peer
// with accumulated timeout/invalid strikes is demonstrably deprioritized
// while healthy peers (all scoring 0) keep the original uniform draw.
//
// A non-empty exclude keeps that peer out of this round's draws (the
// just-dropped connection must rotate, not reconnect) — unless it is the
// only candidate left, where reconnecting beats staying dark.
func (a *Adapter) fillConnectionsExcluding(exclude simnet.NodeID) {
	rng := a.net.Scheduler().Rand()
	for len(a.connected) < a.cfg.Connections {
		now := a.net.Scheduler().Now()
		var candidates, banned []simnet.NodeID
		var stale []string
		for _, addr := range a.addressBook {
			id, ok := a.dir.Resolve(addr)
			if !ok || id == a.ID {
				stale = append(stale, addr)
				continue
			}
			if a.connected[id] {
				continue
			}
			if ph := a.peerHealth[id]; ph != nil && now.Before(ph.banUntil) {
				banned = append(banned, id)
				continue
			}
			candidates = append(candidates, id)
		}
		for _, addr := range stale {
			a.removeAddress(addr)
		}
		if len(candidates) == 0 {
			candidates = banned
		}
		if len(candidates) == 0 {
			return
		}
		pool := candidates
		if exclude != "" {
			kept := make([]simnet.NodeID, 0, len(candidates))
			for _, id := range candidates {
				if id != exclude {
					kept = append(kept, id)
				}
			}
			if len(kept) > 0 {
				pool = kept
			}
		}
		a.connected[a.pickRanked(pool, rng)] = true
	}
}

// pickRanked draws a random peer from the best-scoring half of the pool.
// Ties at the cutoff score are all included, so a pool of all-equal scores
// degenerates to the plain uniform draw. Sorting is by (score, ID) — the ID
// tiebreak keeps the draw independent of map iteration order.
func (a *Adapter) pickRanked(pool []simnet.NodeID, rng *rand.Rand) simnet.NodeID {
	if len(pool) == 1 {
		return pool[0]
	}
	sort.Slice(pool, func(i, j int) bool {
		si, sj := a.PeerScore(pool[i]), a.PeerScore(pool[j])
		if si != sj {
			return si < sj
		}
		return pool[i] < pool[j]
	})
	cutoff := a.PeerScore(pool[(len(pool)-1)/2])
	n := len(pool)
	for n > 1 && a.PeerScore(pool[n-1]) > cutoff {
		n--
	}
	return pool[rng.Intn(n)]
}

func (a *Adapter) removeAddress(addr string) {
	if !a.addrSet[addr] {
		return
	}
	delete(a.addrSet, addr)
	for i, s := range a.addressBook {
		if s == addr {
			a.addressBook = append(a.addressBook[:i], a.addressBook[i+1:]...)
			break
		}
	}
}

// DropConnection simulates a lost connection: the peer is disconnected and
// a new random connection is established, replenishing addresses if the
// book fell below t_l. The dropped peer is excluded from this round's
// refill whenever an alternative exists — immediately re-picking it would
// defeat the rotation the eclipse-recovery analysis relies on. A stopped
// adapter only records the disconnect — the torn-down process must not
// emit discovery traffic; Start re-runs discovery and refills connections.
func (a *Adapter) DropConnection(peer simnet.NodeID) {
	delete(a.connected, peer)
	if !a.running {
		return
	}
	if len(a.addressBook) < a.cfg.AddrLowWater {
		a.discover()
		return
	}
	a.fillConnectionsExcluding(peer)
}

// Disconnect severs a connection without DropConnection's replacement
// refill — the fault-injection hook chaos scenarios use to force a specific
// peer set together with ConnectPeer.
func (a *Adapter) Disconnect(peer simnet.NodeID) {
	delete(a.connected, peer)
}

// ConnectPeer force-establishes a connection to a specific peer, bypassing
// the random draw (fault-injection hook; an eclipse scenario pins the
// adapter's peer set to attacker-controlled nodes).
func (a *Adapter) ConnectPeer(peer simnet.NodeID) {
	if peer == a.ID {
		return
	}
	a.connected[peer] = true
}

// syncLoop periodically requests headers from all connected peers, enforces
// the getheaders deadline, runs the stall detector, and expires stale
// cached transactions. Ticks are gated on the adapter's running state and
// generation: a tick that fires after Stop (or after a Stop/Start pair
// started a newer loop) dies silently. Block-request retries run on their
// own gen-gated timers (see scheduleRetry), not on this loop.
func (a *Adapter) syncLoop(gen int) {
	if !a.running || gen != a.syncGen {
		return
	}
	now := a.net.Scheduler().Now()
	for id, ct := range a.txCache {
		if now.After(ct.expires) {
			delete(a.txCache, id)
		}
	}
	// Getheaders deadline: a peer whose oldest outstanding getheaders went
	// unanswered for RequestTimeout takes a timeout strike. The entry is
	// cleared so the strike is charged once per missed request, and the send
	// below re-arms the deadline.
	// Sweep in sorted order: a deadline strike can ban the peer, and the
	// ban's connection refill draws from the seeded RNG — map order here
	// would make the draw sequence differ run to run.
	if a.cfg.RequestTimeout > 0 {
		pending := make([]simnet.NodeID, 0, len(a.headersPending))
		for peer := range a.headersPending {
			pending = append(pending, peer)
		}
		sort.Slice(pending, func(i, j int) bool { return pending[i] < pending[j] })
		for _, peer := range pending {
			if !a.connected[peer] {
				delete(a.headersPending, peer)
				continue
			}
			if now.Sub(a.headersPending[peer]) >= a.cfg.RequestTimeout {
				delete(a.headersPending, peer)
				a.chargeTimeout(peer)
			}
		}
	}
	// Stall detector: no response from ANY peer for StallTimeout means the
	// network (or our whole peer set) has gone dark — honest nodes always
	// answer getheaders, even with an empty header list.
	if a.cfg.StallTimeout > 0 && now.Sub(a.lastResponse) >= a.cfg.StallTimeout {
		if !a.degraded {
			a.met.stateChanges.With(StateDegraded.String()).Inc()
		}
		a.degraded = true
	}
	locator := a.locator()
	for _, peer := range a.ConnectedPeers() {
		if _, pending := a.headersPending[peer]; !pending {
			a.headersPending[peer] = now
		}
		a.net.Send(a.ID, peer, btcnode.MsgGetHeaders{Locator: locator})
	}
	a.net.Scheduler().After(a.cfg.SyncInterval, func() { a.syncLoop(gen) })
}

// locator lists hashes of the adapter's best-known headers, newest first.
func (a *Adapter) locator() []btc.Hash {
	var loc []btc.Hash
	cur := a.tree.Tip()
	step := int64(1)
	for cur != nil {
		loc = append(loc, cur.Hash)
		if cur.Parent() == nil {
			break
		}
		if len(loc) >= 10 {
			step *= 2
		}
		for i := int64(0); i < step && cur.Parent() != nil; i++ {
			cur = cur.Parent()
		}
	}
	return loc
}

// Receive implements simnet.Endpoint. A stopped adapter (the node
// machine's sandboxed process being torn down) ignores all network traffic:
// without this gate the adapter kept syncing headers while Stop()ped, since
// peers' block announcements would trigger getheaders round trips entirely
// outside the (gated) sync loop.
func (a *Adapter) Receive(from simnet.NodeID, msg any) {
	if !a.running {
		return
	}
	switch m := msg.(type) {
	case btcnode.MsgAddr:
		a.noteResponse(from)
		a.handleAddr(m)
	case btcnode.MsgHeaders:
		a.noteResponse(from)
		a.handleHeaders(from, m)
	case btcnode.MsgBlock:
		a.noteResponse(from)
		a.handleBlock(from, m)
	case btcnode.MsgInvBlock:
		// A new block announcement; fetch headers soon via the sync loop.
		if !a.tree.Contains(m.Hash) {
			a.net.Send(a.ID, from, btcnode.MsgGetHeaders{Locator: a.locator()})
		}
	case btcnode.MsgGetTx:
		if ct, ok := a.txCache[m.TxID]; ok {
			a.net.Send(a.ID, from, btcnode.MsgTx{Tx: ct.tx})
		}
	case btcnode.MsgNotFound:
		a.noteResponse(from)
		a.handleNotFound(from, m)
	}
}

// handleNotFound processes a peer's miss on a getdata. A targeted miss is a
// strike (the ranked pick chose a peer that lacks the block) and escalates
// straight to a broadcast re-issue; a miss on a broadcast is ignored —
// other peers may still answer, and the retry timer covers total misses.
func (a *Adapter) handleNotFound(from simnet.NodeID, m btcnode.MsgNotFound) {
	for _, h := range m.Hashes {
		req := a.requestedBlocks[h]
		if req == nil || req.peer != from {
			continue
		}
		a.chargeTimeout(from)
		a.requestBlock(h)
	}
}

// handleAddr merges discovered addresses up to t_u. At the cap, room is
// made only by evicting an address whose peer is dead (unresolvable) or has
// been on the cooldown list longest — never a live, healthy entry — so a
// gossip flood of bogus addresses can churn other bogus entries but can
// neither grow the book past t_u nor displace working peers.
func (a *Adapter) handleAddr(m btcnode.MsgAddr) {
	for _, addr := range m.Addrs {
		if addr == string(a.ID) || a.addrSet[addr] {
			continue
		}
		if len(a.addressBook) >= a.cfg.AddrHighWater {
			victim := a.evictionVictim()
			if victim == "" {
				break
			}
			a.removeAddress(victim)
		}
		a.addrSet[addr] = true
		a.addressBook = append(a.addressBook, addr)
	}
	a.fillConnections()
}

// evictionVictim picks the address-book entry to drop when the book is full:
// the first dead (unresolvable or self) entry, else the non-connected banned
// peer whose ban started earliest. Returns "" when every entry is live and
// in good standing.
func (a *Adapter) evictionVictim() string {
	now := a.net.Scheduler().Now()
	var bannedAddr string
	var bannedUntil time.Time
	for _, addr := range a.addressBook {
		id, ok := a.dir.Resolve(addr)
		if !ok || id == a.ID {
			return addr
		}
		if a.connected[id] {
			continue
		}
		if ph := a.peerHealth[id]; ph != nil && now.Before(ph.banUntil) {
			if bannedAddr == "" || ph.banUntil.Before(bannedUntil) {
				bannedAddr, bannedUntil = addr, ph.banUntil
			}
		}
	}
	return bannedAddr
}

// handleHeaders validates and stores announced headers. Per §III-B the
// adapter accepts any valid header — multiple headers at the same height
// are fine; fork resolution is the canister's job. Provably invalid headers
// charge the serving peer an invalid strike; orphans (unknown parent) do
// not — out-of-order delivery from an honest peer looks identical.
func (a *Adapter) handleHeaders(from simnet.NodeID, m btcnode.MsgHeaders) {
	now := a.net.Scheduler().Now()
	if at, ok := a.headersPending[from]; ok {
		delete(a.headersPending, from)
		a.peer(from).observeLatency(now.Sub(at))
		a.met.headerLatency.ObserveDuration(now.Sub(at))
	}
	for i := range m.Headers {
		h := m.Headers[i]
		hash := h.BlockHash()
		if a.tree.Contains(hash) {
			continue
		}
		parent := a.tree.Get(h.PrevBlock)
		if parent == nil {
			a.headersRejected++
			a.met.headersRejected.Inc()
			continue
		}
		if err := chain.ValidateHeader(&h, parent, a.params, now); err != nil {
			a.headersRejected++
			a.met.headersRejected.Inc()
			a.chargeInvalid(from)
			continue
		}
		if _, err := a.tree.Insert(h); err != nil {
			a.headersRejected++
			a.met.headersRejected.Inc()
			a.chargeInvalid(from)
			continue
		}
		a.headersAccepted++
		a.met.headersAccepted.Inc()
	}
}

// handleBlock stores a requested block after verifying it matches a known
// valid header and its Merkle root. A corrupt block (Merkle mismatch)
// charges the serving peer an invalid strike and keeps the request alive so
// the retry fetches it from someone else.
func (a *Adapter) handleBlock(from simnet.NodeID, m btcnode.MsgBlock) {
	if m.Block == nil {
		return
	}
	hash := m.Block.BlockHash()
	if !a.tree.Contains(hash) {
		delete(a.requestedBlocks, hash)
		return // no validated header for it
	}
	if a.blocks[hash] != nil {
		delete(a.requestedBlocks, hash)
		return
	}
	if m.Block.MerkleRoot() != m.Block.Header.MerkleRoot {
		a.chargeInvalid(from)
		return
	}
	delete(a.requestedBlocks, hash)
	a.blocks[hash] = m.Block
	a.met.blocksStored.Inc()
}

// getBlock returns the block for a header if available, otherwise requests
// it from connected peers asynchronously and returns nil (Algorithm 1's
// get_block).
func (a *Adapter) getBlock(hash btc.Hash) *btc.Block {
	if b := a.blocks[hash]; b != nil {
		return b
	}
	if _, inFlight := a.requestedBlocks[hash]; !inFlight {
		a.requestBlock(hash)
	}
	return nil
}

// requestBlock (re-)issues a getdata for one block and arms its retry
// timer. The first attempt goes to the single best-ranked peer (cheap, and
// it exercises the health ranking); retries broadcast to the whole peer set
// — by then the cheap path has demonstrably failed.
func (a *Adapter) requestBlock(hash btc.Hash) {
	req := a.requestedBlocks[hash]
	if req == nil {
		req = &blockRequest{}
		a.requestedBlocks[hash] = req
	}
	req.attempts++
	req.issue++
	a.met.requests.Inc()
	if req.attempts > 1 {
		a.met.retries.Inc()
	}
	req.sentAt = a.net.Scheduler().Now()
	req.peer = ""
	msg := btcnode.MsgGetData{BlockHashes: []btc.Hash{hash}}
	if best := a.bestPeer(); req.attempts == 1 && best != "" {
		req.peer = best
		a.net.Send(a.ID, best, msg)
	} else {
		for _, peer := range a.ConnectedPeers() {
			a.net.Send(a.ID, peer, msg)
		}
	}
	a.scheduleRetry(hash, req)
}

// bestPeer returns the connected peer with the lowest health score (ID
// tiebreak for determinism), or "" with no connections.
func (a *Adapter) bestPeer() simnet.NodeID {
	var best simnet.NodeID
	bestScore := 0.0
	for peer := range a.connected {
		s := a.PeerScore(peer)
		if best == "" || s < bestScore || (s == bestScore && peer < best) {
			best, bestScore = peer, s
		}
	}
	return best
}

// scheduleRetry arms the retry/deadline timer for one in-flight block
// request: exponential backoff off BlockRetryInterval, capped at
// RetryBackoffMax, jittered by ±RetryJitter. The timer captures the sync
// generation and the request's issue counter, so it dies silently if the
// adapter stopped or restarted (the PR 3 stale-request fix, extended to
// retries) or if a newer issue of the same request superseded it.
func (a *Adapter) scheduleRetry(hash btc.Hash, req *blockRequest) {
	if a.cfg.BlockRetryInterval <= 0 {
		return
	}
	gen, issue := a.syncGen, req.issue
	a.net.Scheduler().After(a.retryDelay(req.attempts), func() {
		a.retryTick(gen, hash, issue)
	})
}

// retryDelay computes the backoff before retry number attempts+1.
func (a *Adapter) retryDelay(attempts int) time.Duration {
	d := a.cfg.BlockRetryInterval
	for i := 1; i < attempts && i < 12; i++ {
		d *= 2
		if a.cfg.RetryBackoffMax > 0 && d >= a.cfg.RetryBackoffMax {
			d = a.cfg.RetryBackoffMax
			break
		}
	}
	if a.cfg.RetryJitter > 0 {
		spread := (a.net.Scheduler().Rand().Float64()*2 - 1) * a.cfg.RetryJitter
		d += time.Duration(spread * float64(d))
	}
	return d
}

// retryTick is the deadline/backoff timer body. A fire from a dead
// generation (the adapter stopped, or stopped and restarted, since the
// timer was armed) or a superseded issue is a no-op; otherwise the targeted
// peer is charged the missed deadline and the request re-issued.
func (a *Adapter) retryTick(gen int, hash btc.Hash, issue int) {
	if !a.running || gen != a.syncGen {
		return
	}
	req := a.requestedBlocks[hash]
	if req == nil || req.issue != issue {
		return
	}
	if req.peer != "" {
		a.chargeTimeout(req.peer)
	}
	a.requestBlock(hash)
}

// pendingBlockHashes snapshots the in-flight request set in deterministic
// order (re-kick iteration must not depend on map order — it draws from the
// seeded RNG per request).
func (a *Adapter) pendingBlockHashes() []btc.Hash {
	out := make([]btc.Hash, 0, len(a.requestedBlocks))
	for h := range a.requestedBlocks {
		out = append(out, h)
	}
	sort.Slice(out, func(i, j int) bool { return string(out[i][:]) < string(out[j][:]) })
	return out
}

// maxBlocksAtHeight implements Algorithm 1's max_blocks_at_height: many
// blocks during initial sync (below the hard-coded height), one block near
// the tip — "returning only one block is preferable for security reasons"
// (§IV-A, Lemma IV.3 depends on it).
func (a *Adapter) maxBlocksAtHeight(anchorHeight int64) int {
	if anchorHeight < a.cfg.MultiBlockSyncHeight {
		return 1 << 30
	}
	return 1
}

// HandleRequest implements Algorithm 1: given the canister's request
// (β*, A, T), cache and advertise the transactions, then BFS the header
// tree from β* collecting blocks that extend the canister's state (set B)
// and upcoming headers the canister lacks (set N).
//
// A stopped adapter returns an empty response: the sandboxed process is
// down, so it can neither serve nor fetch. This gate closes the restart
// stall the race audit found — a request arriving between Stop and Start
// used to mark blocks as requested (getdata sent, reply discarded by the
// stopped Receive gate), and since Start does not clear that bookkeeping,
// the re-request logic would never re-issue the fetch: the block stayed
// permanently unfetchable until an unrelated inv arrived.
func (a *Adapter) HandleRequest(req Request) Response {
	if !a.running {
		return Response{Health: Health{State: StateStopped}}
	}
	a.met.reg.Trace("adapter.request", "")
	// Lines 1-3: cache and advertise outbound transactions.
	for _, raw := range req.Txs {
		tx, err := btc.ParseTransaction(raw)
		if err != nil {
			continue // canister already checked syntax; be defensive anyway
		}
		a.cacheAndAdvertise(tx)
	}

	anchorHash := req.Anchor.BlockHash()
	have := make(map[btc.Hash]bool, len(req.Have)+1)
	for _, h := range req.Have {
		have[h] = true
	}
	// The anchor's block has been consumed by the canister; treat it as had
	// so the anchor's children satisfy the prev ∈ A ∪ B condition.
	have[anchorHash] = true

	start := a.tree.Get(anchorHash)
	if start == nil {
		// The canister is ahead of or diverged from this adapter; nothing
		// useful to serve.
		return Response{Health: a.Health()}
	}

	var resp Response
	collected := make(map[btc.Hash]bool) // the set B̄ of Algorithm 1
	sizeBytes := 0
	maxBlocks := a.maxBlocksAtHeight(req.AnchorHeight)

	a.tree.BFSFrom(start, func(node *chain.Node) bool {
		if len(resp.Next) >= a.cfg.MaxHeaders {
			return false // |N| cap reached
		}
		cur := node.Hash
		if cur == anchorHash {
			return true // the canister knows its own anchor
		}
		// Lines 6-11: collect the block if the canister lacks it and its
		// predecessor is covered.
		if !have[cur] && (have[node.Header.PrevBlock] || collected[node.Header.PrevBlock]) {
			if b := a.getBlock(cur); b != nil &&
				sizeBytes < a.cfg.MaxResponseBytes &&
				len(resp.Blocks) < maxBlocks {
				resp.Blocks = append(resp.Blocks, BlockWithHeader{Block: b, Header: node.Header})
				collected[cur] = true
				sizeBytes += b.SerializedSize()
			}
		}
		// Lines 12-14: otherwise report the header as upcoming, and prefetch
		// its block "so that the block may be served in the response to a
		// future request" (§III-B).
		if !have[cur] && !collected[cur] {
			resp.Next = append(resp.Next, node.Header)
			a.getBlock(cur)
		}
		return true
	})
	resp.Health = a.Health()
	return resp
}

// cacheAndAdvertise puts a transaction in the expiring cache and announces
// it to all connected peers; peers pull it with MsgGetTx.
func (a *Adapter) cacheAndAdvertise(tx *btc.Transaction) {
	txid := tx.TxID()
	if _, dup := a.txCache[txid]; !dup {
		a.txCache[txid] = cachedTx{
			tx:      tx,
			expires: a.net.Scheduler().Now().Add(a.cfg.TxCacheExpiry),
		}
	}
	for _, peer := range a.ConnectedPeers() {
		a.net.Send(a.ID, peer, btcnode.MsgInvTx{TxID: txid})
	}
}

// TxCacheSize returns the number of cached outbound transactions.
func (a *Adapter) TxCacheSize() int { return len(a.txCache) }

// String summarizes adapter state.
func (a *Adapter) String() string {
	return fmt.Sprintf("adapter{%s peers=%d headers=%d blocks=%d txcache=%d}",
		a.ID, len(a.connected), a.tree.Len(), len(a.blocks), len(a.txCache))
}
