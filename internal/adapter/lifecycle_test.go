package adapter

import (
	"fmt"
	"testing"
	"time"

	"icbtc/internal/btc"
	"icbtc/internal/btcnode"
	"icbtc/internal/simnet"
)

// bareAdapter builds an adapter with a hand-assembled directory and address
// book, no honest network behind it — for white-box lifecycle tests that
// drive the peer set directly.
func bareAdapter(seed int64, cfg Config, peers ...string) (*Adapter, *simnet.Scheduler, *btcnode.SeedDirectory) {
	sched := simnet.NewScheduler(seed)
	net := simnet.NewNetwork(sched)
	dir := btcnode.NewSeedDirectory()
	ad := New("adapter/bare", net, btc.RegtestParams(), dir, cfg)
	for _, p := range peers {
		dir.AddNode(p, simnet.NodeID(p))
		ad.addrSet[p] = true
		ad.addressBook = append(ad.addressBook, p)
	}
	return ad, sched, dir
}

// TestRetryTimerGenGatedAcrossRestart is the regression test for the retry
// lifecycle across Stop/Start: a retry timer armed before Stop must not fire
// into a restarted adapter's fresh requestedBlocks map. Pre-fix (retry
// timers without the generation gate) the stale timer collides with the
// restarted request's identical issue counter and double-retries it,
// charging a spurious timeout and bumping attempts.
func TestRetryTimerGenGatedAcrossRestart(t *testing.T) {
	cfg := ConfigForNetwork(btc.Regtest)
	cfg.BlockRetryInterval = 10 * time.Second
	cfg.RetryJitter = 0
	cfg.SyncInterval = time.Hour // keep sync ticks out of the timeline
	cfg.StallTimeout = 0
	cfg.RequestTimeout = 0
	ad, sched, _ := bareAdapter(1, cfg)
	ad.Start()
	// A peer with no endpoint: requests vanish, replies never come.
	ad.ConnectPeer("ghost")
	hash := btc.DoubleSHA256([]byte("wanted-block"))

	if b := ad.getBlock(hash); b != nil { // t=0: attempts=1, retry armed at t=10s
		t.Fatal("block cannot exist")
	}
	sched.RunFor(time.Second) // t=1s

	ad.Stop()
	ad.Start()
	ad.ConnectPeer("ghost")
	if b := ad.getBlock(hash); b != nil { // t=1s: fresh lifecycle, retry at t=11s
		t.Fatal("block cannot exist")
	}
	if got := ad.BlockRequestAttempts(hash); got != 1 {
		t.Fatalf("fresh request attempts=%d, want 1", got)
	}

	// t=10.5s: the pre-stop timer has fired (t=10s) — the generation gate
	// must have killed it. The fresh request's own retry (t=11s) is pending.
	sched.RunFor(9500 * time.Millisecond)
	if got := ad.BlockRequestAttempts(hash); got != 1 {
		t.Fatalf("stale retry timer fired into restarted adapter: attempts=%d, want 1", got)
	}

	// t=12.5s: the fresh timer has fired and the retry went out.
	sched.RunFor(2 * time.Second)
	if got := ad.BlockRequestAttempts(hash); got != 2 {
		t.Fatalf("live retry timer dead too: attempts=%d, want 2", got)
	}
}

// TestAddressBookBoundedUnderGossipFlood: a flood of bogus addresses can
// churn other bogus (dead) entries but can neither grow the book past t_u
// nor displace the addresses of live peers.
func TestAddressBookBoundedUnderGossipFlood(t *testing.T) {
	h := newHarness(t, 30, 6) // AddrHighWater = 50
	h.ad.Start()
	h.run(5 * time.Second)
	if len(h.ad.ConnectedPeers()) != 3 {
		t.Fatalf("setup: %d peers", len(h.ad.ConnectedPeers()))
	}
	peer := h.ad.ConnectedPeers()[0]
	for wave := 0; wave < 40; wave++ {
		addrs := make([]string, 25)
		for j := range addrs {
			addrs[j] = fmt.Sprintf("bogus-%d-%d", wave, j)
		}
		h.ad.Receive(peer, btcnode.MsgAddr{Addrs: addrs})
	}
	if got := h.ad.AddressBookSize(); got > 50 {
		t.Fatalf("gossip flood grew the book to %d (cap 50)", got)
	}
	// Every live node's address must have survived the flood.
	for _, n := range h.sim.Nodes {
		if !h.ad.addrSet[string(n.ID)] {
			t.Fatalf("flood evicted live peer %s from the book", n.ID)
		}
	}
	h.run(time.Minute) // and the adapter still operates
	if len(h.ad.ConnectedPeers()) != 3 {
		t.Fatal("connections lost after flood")
	}
	// Eviction makes room: a newly learned LIVE address still enters the
	// full book by displacing a dead (bogus) entry.
	h.sim.Directory.AddNode("late-joiner", "btc/late")
	h.ad.Receive(peer, btcnode.MsgAddr{Addrs: []string{"late-joiner"}})
	if !h.ad.addrSet["late-joiner"] {
		t.Fatal("full book rejected a live address instead of evicting a dead one")
	}
	if got := h.ad.AddressBookSize(); got > 50 {
		t.Fatalf("book grew past cap: %d", got)
	}
}

// TestFillConnectionsDeprioritizesTimeoutProne: the acceptance check that a
// peer with repeated timeouts is demonstrably never drawn while healthy
// candidates remain, yet stays usable as the pool of last resort.
func TestFillConnectionsDeprioritizesTimeoutProne(t *testing.T) {
	cfg := ConfigForNetwork(btc.Regtest)
	cfg.Connections = 3
	cfg.PeerBanScore = 0 // banning off: isolate the score ranking
	ad, _, _ := bareAdapter(5, cfg, "btc/0", "btc/1", "btc/2", "btc/bad")
	for i := 0; i < 4; i++ {
		ad.chargeTimeout("btc/bad")
	}
	if ad.PeerScore("btc/bad") <= ad.PeerScore("btc/0") {
		t.Fatal("timeouts did not raise the score")
	}
	for trial := 0; trial < 100; trial++ {
		ad.connected = map[simnet.NodeID]bool{}
		ad.fillConnections()
		if len(ad.connected) != 3 {
			t.Fatalf("filled %d connections", len(ad.connected))
		}
		if ad.connected["btc/bad"] {
			t.Fatalf("trial %d: timeout-prone peer drawn while 3 healthy peers were available", trial)
		}
	}
	// With no healthy alternative the degraded peer is still usable.
	ad.cfg.Connections = 4
	ad.fillConnections()
	if !ad.connected["btc/bad"] {
		t.Fatal("timeout-prone peer unusable as last resort")
	}
}

// TestPeerBanAndCooldown: crossing the ban score drops the connection, puts
// the peer on the cooldown list, excludes it from refills, and lets it back
// in after the cooldown.
func TestPeerBanAndCooldown(t *testing.T) {
	cfg := ConfigForNetwork(btc.Regtest)
	cfg.Connections = 2
	cfg.SyncInterval = time.Hour
	cfg.StallTimeout = 0
	ad, sched, _ := bareAdapter(7, cfg, "btc/0", "btc/1", "btc/bad")
	ad.Start()
	ad.connected = map[simnet.NodeID]bool{"btc/bad": true, "btc/0": true}

	for i := 0; i < int(cfg.PeerBanScore); i++ {
		ad.chargeTimeout("btc/bad")
	}
	if !ad.PeerBanned("btc/bad") {
		t.Fatal("peer not banned at the threshold")
	}
	if ad.connected["btc/bad"] {
		t.Fatal("banned peer still connected")
	}
	// The refill triggered by the ban-drop chose the healthy candidate.
	if !ad.connected["btc/1"] || len(ad.connected) != 2 {
		t.Fatalf("refill after ban wrong: %v", ad.ConnectedPeers())
	}
	// Counters reset with the ban: the cooldown IS the penalty.
	if got := ad.PeerScore("btc/bad"); got != 0 {
		t.Fatalf("score after ban %v, want 0 (reset)", got)
	}
	// Cooldown expiry re-admits the peer.
	sched.RunFor(cfg.PeerCooldown + time.Second)
	if ad.PeerBanned("btc/bad") {
		t.Fatal("ban did not expire")
	}
	ad.cfg.Connections = 3
	ad.fillConnections()
	if !ad.connected["btc/bad"] {
		t.Fatal("recovered peer not re-admitted")
	}
}

// TestStallDetectorFlipsDegraded: the acceptance check that the adapter
// reports Degraded within one sync interval of the stall becoming
// detectable, and recovers as soon as any peer responds after heal.
func TestStallDetectorFlipsDegraded(t *testing.T) {
	h := newHarness(t, 31, 5)
	h.ad.Start()
	h.run(10 * time.Second)
	if st := h.ad.Health().State; st != StateSyncing {
		t.Fatalf("healthy adapter reports %v", st)
	}

	// Total stall: every peer goes dark at once.
	h.net.SetPartition(h.ad.ID, "dark")
	stallStart := h.sched.Now()
	h.run(h.ad.cfg.StallTimeout + 2*h.ad.cfg.SyncInterval)
	health := h.ad.Health()
	if health.State != StateDegraded {
		t.Fatalf("adapter not degraded %v after total stall", h.sched.Now().Sub(stallStart))
	}
	// The self-report is carried on responses to the canister.
	resp := h.ad.HandleRequest(Request{Anchor: h.params.GenesisHeader, AnchorHeight: 0})
	if resp.Health.State != StateDegraded {
		t.Fatalf("response carries health %v, want degraded", resp.Health.State)
	}
	if resp.Health.Peers == 0 {
		t.Fatal("peer count missing from health report")
	}

	// Heal: the first response flips the adapter back.
	h.net.HealPartitions()
	h.run(2*h.ad.cfg.SyncInterval + time.Second)
	if st := h.ad.Health().State; st != StateSyncing {
		t.Fatalf("adapter stuck degraded after heal: %v", st)
	}

	// And a stopped adapter reports exactly that.
	h.ad.Stop()
	resp = h.ad.HandleRequest(Request{Anchor: h.params.GenesisHeader, AnchorHeight: 0})
	if resp.Health.State != StateStopped {
		t.Fatalf("stopped adapter reports %v", resp.Health.State)
	}
}

// TestDegradedRecoveryRekicksPendingBlocks: backoff clocks that grew long
// during a stall must not delay the fetch after heal — leaving the degraded
// state resets every pending request's lifecycle and re-issues it.
func TestDegradedRecoveryRekicksPendingBlocks(t *testing.T) {
	h := newHarness(t, 32, 5)
	blocks, err := h.miner.MineChain(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.sim.SyncAll(500_000); err != nil {
		t.Fatal(err)
	}
	h.ad.Start()
	h.run(10 * time.Second)
	hash := blocks[0].BlockHash()
	if !h.ad.HasBlock(hash) {
		// ensure header synced at least
		if !h.ad.Tree().Contains(hash) {
			t.Fatal("header never synced")
		}
	}

	// Partition, then request a second mined block during the blackout: the
	// request's backoff doubles while nothing can get through.
	h.net.SetPartition(h.ad.ID, "dark")
	more, err := h.miner.MineChain(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.sim.SyncAll(500_000); err != nil {
		t.Fatal(err)
	}
	wanted := more[0].BlockHash()
	h.ad.tree.Insert(more[0].Header)
	if b := h.ad.getBlock(wanted); b != nil {
		t.Fatal("block cannot be fetchable during the partition")
	}
	h.run(2 * time.Minute) // retries back off: 10,20,40,80s all swallowed
	if !h.ad.Degraded() {
		t.Fatal("adapter not degraded during long partition")
	}
	if h.ad.HasBlock(wanted) {
		t.Fatal("block crossed the partition")
	}

	h.net.HealPartitions()
	// Recovery re-kick: the block must arrive within a couple of sync
	// intervals, not after the grown (up to 80 s) backoff expires.
	h.run(3*h.ad.cfg.SyncInterval + time.Second)
	if !h.ad.HasBlock(wanted) {
		t.Fatal("pending block not re-kicked after recovery")
	}
}
