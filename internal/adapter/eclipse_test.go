package adapter

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"icbtc/internal/btc"
	"icbtc/internal/btcnode"
	"icbtc/internal/secp256k1"
	"icbtc/internal/simnet"
)

// Integration-level counterpart of the Lemma IV.1 Monte Carlo: adapters
// running the REAL discovery process against a directory that mixes honest
// and adversarial (silent) Bitcoin nodes.

// buildMixedNetwork returns a network with honest and silent-adversarial
// nodes all registered in one directory.
func buildMixedNetwork(t *testing.T, seed int64, honest, adversarial int) (*simnet.Scheduler, *simnet.Network, *btcnode.SimNetwork) {
	t.Helper()
	sched := simnet.NewScheduler(seed)
	net := simnet.NewNetwork(sched)
	params := btc.RegtestParams()
	sim := btcnode.BuildHonestNetwork(net, params, honest)
	sim.AddAdversaries(adversarial)
	for _, adv := range sim.Adversaries {
		adv.SetSilent(true)
	}
	return sched, net, sim
}

func TestAdapterSyncsDespiteSilentAdversaries(t *testing.T) {
	// 60% of the node population is adversarial and silent; with ℓ=5 the
	// adapter keeps at least one honest connection w.h.p. and still syncs.
	sched, net, sim := buildMixedNetwork(t, 51, 4, 6)
	key, _ := secp256k1.GeneratePrivateKey(rand.New(rand.NewSource(51)))
	miner := btcnode.NewMinerWithKey(sim.Nodes[0], key)
	if _, err := miner.MineChain(5, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := sim.SyncAll(1_000_000); err != nil {
		t.Fatal(err)
	}

	cfg := ConfigForNetwork(btc.Regtest)
	cfg.Connections = 5
	cfg.AddrLowWater, cfg.AddrHighWater = 1, 50
	ad := New("adapter/e", net, btc.RegtestParams(), sim.Directory, cfg)
	ad.Start()
	sched.RunFor(2 * time.Minute)

	honestConns := 0
	for _, p := range ad.ConnectedPeers() {
		isAdv := false
		for _, adv := range sim.Adversaries {
			if adv.Node.ID == p {
				isAdv = true
			}
		}
		if !isAdv {
			honestConns++
		}
	}
	if honestConns == 0 {
		t.Skip("all connections adversarial for this seed (probability ϕ^ℓ); covered by the Monte Carlo")
	}
	if got := ad.Tree().MaxHeight(); got != 5 {
		t.Fatalf("adapter synced to %d with %d honest connections", got, honestConns)
	}
}

func TestDropConnectionDoesNotRepickDroppedPeer(t *testing.T) {
	// Regression: DropConnection used to refill from the whole book, so the
	// just-dropped peer could be re-picked immediately — with ℓ=1 and a
	// two-node book about half the time, which defeats the rotation that
	// eclipse recovery (and the ϕ^ℓ analysis) relies on. Across 40 seeds a
	// surviving re-pick bug fails with probability 1 − 2⁻⁴⁰.
	for trial := 0; trial < 40; trial++ {
		sched := simnet.NewScheduler(int64(3000 + trial))
		net := simnet.NewNetwork(sched)
		sim := btcnode.BuildHonestNetwork(net, btc.RegtestParams(), 2)
		cfg := ConfigForNetwork(btc.Regtest)
		cfg.Connections = 1
		cfg.AddrLowWater, cfg.AddrHighWater = 1, 10
		ad := New(simnet.NodeID(fmt.Sprintf("adapter/d%d", trial)), net, btc.RegtestParams(), sim.Directory, cfg)
		ad.Start()
		sched.RunFor(5 * time.Second)
		peers := ad.ConnectedPeers()
		if len(peers) != 1 {
			t.Fatalf("trial %d: %d connections, want 1", trial, len(peers))
		}
		dropped := peers[0]
		ad.DropConnection(dropped)
		peers = ad.ConnectedPeers()
		if len(peers) != 1 {
			t.Fatalf("trial %d: refill left %d connections, want 1", trial, len(peers))
		}
		if peers[0] == dropped {
			t.Fatalf("trial %d: refill re-picked the just-dropped peer %s", trial, dropped)
		}
	}
}

func TestDropConnectionFallsBackToSoleCandidate(t *testing.T) {
	// When the dropped peer is the only node in the book, excluding it would
	// leave the adapter dark; the refill must fall back to reconnecting.
	sched := simnet.NewScheduler(7)
	net := simnet.NewNetwork(sched)
	sim := btcnode.BuildHonestNetwork(net, btc.RegtestParams(), 1)
	cfg := ConfigForNetwork(btc.Regtest)
	cfg.Connections = 1
	cfg.AddrLowWater, cfg.AddrHighWater = 1, 10
	ad := New("adapter/sole", net, btc.RegtestParams(), sim.Directory, cfg)
	ad.Start()
	sched.RunFor(5 * time.Second)
	peers := ad.ConnectedPeers()
	if len(peers) != 1 {
		t.Fatalf("%d connections, want 1", len(peers))
	}
	ad.DropConnection(peers[0])
	now := ad.ConnectedPeers()
	if len(now) != 1 || now[0] != peers[0] {
		t.Fatalf("sole-candidate refill got %v, want reconnect to %s", now, peers[0])
	}
}

func TestAdapterEclipseFrequencyMatchesPhiToTheL(t *testing.T) {
	// Run the real discovery process across many seeds and compare the
	// all-adversarial-connection frequency with ϕ^ℓ. Small ℓ keeps the
	// probability measurable with few trials.
	const (
		honest      = 5
		adversarial = 5 // ϕ = 0.5
		l           = 2 // ϕ^ℓ = 0.25
		trials      = 120
	)
	eclipsed := 0
	for trial := 0; trial < trials; trial++ {
		sched, net, sim := buildMixedNetwork(t, int64(1000+trial), honest, adversarial)
		cfg := ConfigForNetwork(btc.Regtest)
		cfg.Connections = l
		cfg.AddrLowWater, cfg.AddrHighWater = 1, 50
		ad := New(simnet.NodeID(fmt.Sprintf("adapter/t%d", trial)), net, btc.RegtestParams(), sim.Directory, cfg)
		ad.Start()
		sched.RunFor(10 * time.Second)
		advSet := map[simnet.NodeID]bool{}
		for _, adv := range sim.Adversaries {
			advSet[adv.Node.ID] = true
		}
		all := true
		peers := ad.ConnectedPeers()
		if len(peers) == 0 {
			all = false
		}
		for _, p := range peers {
			if !advSet[p] {
				all = false
			}
		}
		if all {
			eclipsed++
		}
	}
	freq := float64(eclipsed) / float64(trials)
	// ϕ^ℓ = 0.25 ± wide MC band (sd ≈ 0.04 at 120 trials).
	if freq < 0.10 || freq > 0.45 {
		t.Fatalf("eclipse frequency %.3f far from ϕ^ℓ = 0.25", freq)
	}
}
