package adapter

import (
	"time"

	"icbtc/internal/btc"
	"icbtc/internal/simnet"
)

// State is the adapter's coarse operating state, reported to the canister on
// every response so the stack above can serve with an explicit staleness
// annotation instead of silently aging.
type State uint8

const (
	// StateUnknown is the zero value: no adapter report has been seen yet
	// (e.g. a freshly restored canister before its first payload).
	StateUnknown State = iota
	// StateSyncing is normal operation: peers are responding.
	StateSyncing
	// StateDegraded means the stall detector fired: no peer has produced any
	// response for at least Config.StallTimeout. Headers/blocks served from
	// the adapter's tree may be arbitrarily stale.
	StateDegraded
	// StateStopped means the sandboxed adapter process is down.
	StateStopped
)

func (s State) String() string {
	switch s {
	case StateSyncing:
		return "syncing"
	case StateDegraded:
		return "degraded"
	case StateStopped:
		return "stopped"
	default:
		return "unknown"
	}
}

// Health is the adapter's self-report, carried on every Response.
type Health struct {
	State State
	// Height is the adapter's best known header height.
	Height int64
	// PendingBlocks is the number of in-flight block downloads.
	PendingBlocks int
	// Peers is the number of live peer connections.
	Peers int
}

// peerHealth tracks one Bitcoin peer's quality. Scores feed candidate
// ranking in fillConnections and the cooldown/ban list: a peer that times
// out or serves invalid data is deprioritized and eventually rotated out.
type peerHealth struct {
	// timeouts counts requests (getheaders or targeted getdata) the peer
	// failed to answer within the deadline, plus targeted not-found misses.
	timeouts int
	// invalid counts invalid headers/blocks the peer served.
	invalid int
	// latencyEWMA is an exponentially weighted moving average of the peer's
	// getheaders response latency, in seconds.
	latencyEWMA float64
	hasLatency  bool
	// banUntil puts the peer on the cooldown list until the given time.
	banUntil time.Time
	lastSeen time.Time
}

// score is the ranking key: lower is better. Timeouts weigh 1, invalid
// responses 2 (serving bad data is worse than being slow), and the latency
// EWMA contributes its value in seconds.
func (p *peerHealth) score() float64 {
	return float64(p.timeouts) + 2*float64(p.invalid) + p.latencyEWMA
}

func (p *peerHealth) observeLatency(d time.Duration) {
	s := d.Seconds()
	if !p.hasLatency {
		p.latencyEWMA = s
		p.hasLatency = true
		return
	}
	p.latencyEWMA = 0.8*p.latencyEWMA + 0.2*s
}

// blockRequest is the lifecycle record of one in-flight block download.
type blockRequest struct {
	// attempts counts issues of this request; it drives the exponential
	// backoff and resets when the adapter recovers from a stall.
	attempts int
	// issue increments on every (re-)issue and never resets; a scheduled
	// retry timer captures it so a timer belonging to a superseded issue
	// dies instead of double-retrying.
	issue int
	// sentAt is the time of the last issue.
	sentAt time.Time
	// peer is the sole target of a targeted issue ("" for broadcasts); a
	// deadline miss is charged to it.
	peer simnet.NodeID
}

// peer returns (creating on demand) the health record for a peer.
func (a *Adapter) peer(id simnet.NodeID) *peerHealth {
	ph := a.peerHealth[id]
	if ph == nil {
		ph = &peerHealth{}
		a.peerHealth[id] = ph
	}
	return ph
}

// PeerScore returns a peer's current health score (0 = perfect/unknown).
func (a *Adapter) PeerScore(id simnet.NodeID) float64 {
	if ph := a.peerHealth[id]; ph != nil {
		return ph.score()
	}
	return 0
}

// PeerBanned reports whether a peer is currently on the cooldown list.
func (a *Adapter) PeerBanned(id simnet.NodeID) bool {
	ph := a.peerHealth[id]
	return ph != nil && a.net.Scheduler().Now().Before(ph.banUntil)
}

// Degraded reports whether the stall detector has fired.
func (a *Adapter) Degraded() bool { return a.degraded }

// BlockRequestAttempts returns the attempt count of an in-flight block
// request, 0 if none is pending (test hook for the retry lifecycle).
func (a *Adapter) BlockRequestAttempts(h btc.Hash) int {
	if req := a.requestedBlocks[h]; req != nil {
		return req.attempts
	}
	return 0
}

// Health assembles the adapter's current self-report.
func (a *Adapter) Health() Health {
	if !a.running {
		return Health{State: StateStopped}
	}
	st := StateSyncing
	if a.degraded {
		st = StateDegraded
	}
	return Health{
		State:         st,
		Height:        a.tree.MaxHeight(),
		PendingBlocks: len(a.requestedBlocks),
		Peers:         len(a.connected),
	}
}

// chargeTimeout records a missed deadline against a peer.
func (a *Adapter) chargeTimeout(id simnet.NodeID) {
	a.met.timeouts.Inc()
	ph := a.peer(id)
	ph.timeouts++
	a.maybeBan(id, ph)
}

// chargeInvalid records an invalid header/block served by a peer.
func (a *Adapter) chargeInvalid(id simnet.NodeID) {
	a.met.invalid.Inc()
	ph := a.peer(id)
	ph.invalid++
	a.maybeBan(id, ph)
}

// maybeBan puts a peer whose score crossed the ban threshold on the
// cooldown list, resets its counters (the ban IS the penalty; stale strikes
// must not instantly re-ban a recovered peer), and rotates it out of the
// connection set.
func (a *Adapter) maybeBan(id simnet.NodeID, ph *peerHealth) {
	if a.cfg.PeerBanScore <= 0 || ph.score() < a.cfg.PeerBanScore {
		return
	}
	a.met.bans.Inc()
	ph.banUntil = a.net.Scheduler().Now().Add(a.cfg.PeerCooldown)
	ph.timeouts, ph.invalid = 0, 0
	ph.latencyEWMA, ph.hasLatency = 0, false
	if a.connected[id] {
		a.DropConnection(id)
	}
}

// noteResponse marks a peer (and the network as a whole) alive. Leaving the
// degraded state re-kicks every pending block download: backoff clocks that
// grew long during the stall must not delay recovery after heal.
func (a *Adapter) noteResponse(from simnet.NodeID) {
	a.met.responses.Inc()
	now := a.net.Scheduler().Now()
	a.lastResponse = now
	a.peer(from).lastSeen = now
	if a.degraded {
		a.degraded = false
		a.met.stateChanges.With(StateSyncing.String()).Inc()
		a.rekickPendingBlocks()
	}
}

// rekickPendingBlocks restarts the lifecycle of every in-flight block
// download: attempts reset (fresh backoff), immediate re-issue.
func (a *Adapter) rekickPendingBlocks() {
	hashes := a.pendingBlockHashes()
	for _, h := range hashes {
		if req := a.requestedBlocks[h]; req != nil {
			req.attempts = 0
			a.requestBlock(h)
		}
	}
}
