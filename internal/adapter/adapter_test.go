package adapter

import (
	"math/rand"
	"testing"
	"time"

	"icbtc/internal/btc"
	"icbtc/internal/btcnode"
	"icbtc/internal/secp256k1"
	"icbtc/internal/simnet"
)

// harness builds a Bitcoin network of nodeCount honest nodes plus one
// adapter wired to the directory.
type harness struct {
	sched  *simnet.Scheduler
	net    *simnet.Network
	params *btc.Params
	sim    *btcnode.SimNetwork
	ad     *Adapter
	miner  *btcnode.Miner
}

func newHarness(t *testing.T, seed int64, nodeCount int) *harness {
	t.Helper()
	sched := simnet.NewScheduler(seed)
	net := simnet.NewNetwork(sched)
	params := btc.RegtestParams()
	sim := btcnode.BuildHonestNetwork(net, params, nodeCount)
	key, err := secp256k1.GeneratePrivateKey(rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	cfg := ConfigForNetwork(btc.Regtest)
	cfg.Connections = 3
	// Regtest production thresholds are t_l = t_u = 1 (pre-configured IPs);
	// the tests exercise discovery, so raise them.
	cfg.AddrLowWater, cfg.AddrHighWater = 5, 50
	ad := New("adapter/0", net, params, sim.Directory, cfg)
	return &harness{
		sched:  sched,
		net:    net,
		params: params,
		sim:    sim,
		ad:     ad,
		miner:  btcnode.NewMinerWithKey(sim.Nodes[0], key),
	}
}

func (h *harness) run(d time.Duration) { h.sched.RunFor(d) }

func TestDiscoveryAndConnections(t *testing.T) {
	h := newHarness(t, 1, 6)
	h.ad.Start()
	h.run(5 * time.Second)
	peers := h.ad.ConnectedPeers()
	if len(peers) != 3 {
		t.Fatalf("connected %d peers, want 3", len(peers))
	}
	if h.ad.AddressBookSize() == 0 {
		t.Fatal("no addresses collected")
	}
	// All peers must be distinct real nodes.
	seen := map[simnet.NodeID]bool{}
	for _, p := range peers {
		if seen[p] {
			t.Fatal("duplicate connection")
		}
		seen[p] = true
	}
}

func TestHeaderSyncFromGenesis(t *testing.T) {
	h := newHarness(t, 2, 5)
	if _, err := h.miner.MineChain(10, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := h.sim.SyncAll(500_000); err != nil {
		t.Fatal(err)
	}
	h.ad.Start()
	h.run(time.Minute)
	if got := h.ad.Tree().MaxHeight(); got != 10 {
		t.Fatalf("adapter synced to height %d, want 10", got)
	}
	accepted, rejected := h.ad.HeaderStats()
	if accepted != 10 {
		t.Fatalf("accepted %d headers", accepted)
	}
	if rejected != 0 {
		t.Fatalf("rejected %d valid headers", rejected)
	}
}

func TestAdapterTracksForks(t *testing.T) {
	// The adapter must store any valid header, including competing forks
	// ("The Bitcoin adapter does not perform any fork resolution").
	h := newHarness(t, 3, 4)
	if _, err := h.miner.MineChain(3, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := h.sim.SyncAll(500_000); err != nil {
		t.Fatal(err)
	}
	// Build a competing branch from height 1 on a detached node.
	lone := btcnode.NewNode("btc/lone", h.net, h.params)
	blk1, _ := h.sim.Nodes[0].GetBlock(h.sim.Nodes[0].Tree().AtHeight(1)[0].Hash)
	if _, err := lone.AcceptBlock(blk1); err != nil {
		t.Fatal(err)
	}
	key, _ := secp256k1.GeneratePrivateKey(rand.New(rand.NewSource(99)))
	loneMiner := btcnode.NewMinerWithKey(lone, key)
	if _, err := loneMiner.MineChain(2, 0); err != nil {
		t.Fatal(err)
	}
	// Connect the lone node and gossip its branch to the honest network.
	btcnode.Connect(lone, h.sim.Nodes[0])
	lone.SetAddressBook([]string{string(h.sim.Nodes[0].ID)})
	var forkHeaders []btc.BlockHeader
	for _, n := range lone.Tree().CurrentChain()[2:] { // skip genesis + shared block 1
		forkHeaders = append(forkHeaders, n.Header)
	}
	h.net.Send(lone.ID, h.sim.Nodes[0].ID, btcnode.MsgHeaders{Headers: forkHeaders})
	h.run(time.Minute)

	h.ad.Start()
	h.run(2 * time.Minute)

	// Heights 2 and 3 should have two headers each on the adapter (the
	// honest chain's and the lone fork's) — the honest nodes also track
	// both branches and serve fork headers.
	if n := len(h.ad.Tree().AtHeight(2)); n != 2 {
		t.Fatalf("height 2 has %d headers, want 2", n)
	}
}

func TestRejectsInvalidHeaders(t *testing.T) {
	h := newHarness(t, 4, 3)
	h.ad.Start()
	h.run(2 * time.Second)

	genesis := h.params.GenesisHeader
	// Bad PoW: grind a header that misses its target by construction is
	// hard with regtest bits, so use wrong difficulty bits instead, plus a
	// bad-timestamp header.
	badBits := btc.BlockHeader{
		Version:   1,
		PrevBlock: genesis.BlockHash(),
		Timestamp: genesis.Timestamp + 10,
		Bits:      0x1b000001, // not the expected bits
	}
	badTime := btc.BlockHeader{
		Version:   1,
		PrevBlock: genesis.BlockHash(),
		Timestamp: genesis.Timestamp, // not after MTP
		Bits:      genesis.Bits,
	}
	orphan := btc.BlockHeader{
		Version:   1,
		PrevBlock: btc.DoubleSHA256([]byte("nowhere")),
		Timestamp: genesis.Timestamp + 10,
		Bits:      genesis.Bits,
	}
	h.net.Send(h.sim.Nodes[0].ID, h.ad.ID, btcnode.MsgHeaders{
		Headers: []btc.BlockHeader{badBits, badTime, orphan},
	})
	h.run(2 * time.Second)
	if h.ad.Tree().Len() != 1 {
		t.Fatalf("tree has %d headers, want 1 (genesis only)", h.ad.Tree().Len())
	}
	_, rejected := h.ad.HeaderStats()
	if rejected != 3 {
		t.Fatalf("rejected %d, want 3", rejected)
	}
}

func TestAlgorithm1SingleBlockNearTip(t *testing.T) {
	h := newHarness(t, 5, 4)
	if _, err := h.miner.MineChain(5, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := h.sim.SyncAll(500_000); err != nil {
		t.Fatal(err)
	}
	h.ad.Start()
	h.run(time.Minute)

	// Anchor at genesis; no blocks on hand; MultiBlockSyncHeight=0 means
	// single-block responses.
	req := Request{Anchor: h.params.GenesisHeader, AnchorHeight: 0}
	resp := h.ad.HandleRequest(req)
	// First call: blocks not yet fetched → empty B, headers in N, and async
	// getdata fired.
	if len(resp.Blocks) != 0 {
		t.Fatalf("blocks before fetch: %d", len(resp.Blocks))
	}
	if len(resp.Next) != 5 {
		t.Fatalf("next headers %d, want 5", len(resp.Next))
	}
	h.run(time.Minute) // let block fetches complete

	resp = h.ad.HandleRequest(req)
	if len(resp.Blocks) != 1 {
		t.Fatalf("near-tip response carried %d blocks, want 1", len(resp.Blocks))
	}
	// The returned block must be the anchor's direct child.
	if resp.Blocks[0].Header.PrevBlock != h.params.GenesisHeader.BlockHash() {
		t.Fatal("returned block does not extend the anchor")
	}
	// Remaining headers are upcoming.
	if len(resp.Next) != 4 {
		t.Fatalf("next %d, want 4", len(resp.Next))
	}
}

func TestAlgorithm1MultiBlockDuringInitialSync(t *testing.T) {
	h := newHarness(t, 6, 4)
	h.ad.cfg.MultiBlockSyncHeight = 1000 // anchor far below: fast sync mode
	if _, err := h.miner.MineChain(6, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := h.sim.SyncAll(500_000); err != nil {
		t.Fatal(err)
	}
	h.ad.Start()
	h.run(time.Minute)

	req := Request{Anchor: h.params.GenesisHeader, AnchorHeight: 0}
	h.ad.HandleRequest(req) // trigger fetches
	h.run(time.Minute)
	resp := h.ad.HandleRequest(req)
	if len(resp.Blocks) != 6 {
		t.Fatalf("multi-block sync returned %d blocks, want 6", len(resp.Blocks))
	}
	// Blocks must be in an order where each extends A ∪ B.
	have := map[btc.Hash]bool{h.params.GenesisHeader.BlockHash(): true}
	for i, bw := range resp.Blocks {
		if !have[bw.Header.PrevBlock] {
			t.Fatalf("block %d does not extend known state", i)
		}
		have[bw.Header.BlockHash()] = true
	}
}

func TestAlgorithm1RespectsHaveSet(t *testing.T) {
	h := newHarness(t, 7, 4)
	h.ad.cfg.MultiBlockSyncHeight = 1000
	if _, err := h.miner.MineChain(4, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := h.sim.SyncAll(500_000); err != nil {
		t.Fatal(err)
	}
	h.ad.Start()
	h.run(time.Minute)

	req := Request{Anchor: h.params.GenesisHeader, AnchorHeight: 0}
	h.ad.HandleRequest(req)
	h.run(time.Minute)

	// The canister already has blocks 1 and 2.
	chainNodes := h.sim.Nodes[0].Tree().CurrentChain()
	req.Have = []btc.Hash{chainNodes[1].Hash, chainNodes[2].Hash}
	resp := h.ad.HandleRequest(req)
	if len(resp.Blocks) != 2 {
		t.Fatalf("returned %d blocks, want 2 (heights 3,4)", len(resp.Blocks))
	}
	for _, bw := range resp.Blocks {
		if bw.Header.BlockHash() == chainNodes[1].Hash || bw.Header.BlockHash() == chainNodes[2].Hash {
			t.Fatal("returned a block the canister already has")
		}
	}
	// Nothing upcoming: everything is either had or returned.
	if len(resp.Next) != 0 {
		t.Fatalf("next %d, want 0", len(resp.Next))
	}
}

func TestAlgorithm1MaxHeadersCap(t *testing.T) {
	h := newHarness(t, 8, 4)
	h.ad.cfg.MaxHeaders = 10
	if _, err := h.miner.MineChain(25, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := h.sim.SyncAll(2_000_000); err != nil {
		t.Fatal(err)
	}
	h.ad.Start()
	h.run(2 * time.Minute)
	if h.ad.Tree().MaxHeight() != 25 {
		t.Fatalf("adapter height %d", h.ad.Tree().MaxHeight())
	}
	resp := h.ad.HandleRequest(Request{Anchor: h.params.GenesisHeader, AnchorHeight: 0})
	if len(resp.Next) != 10 {
		t.Fatalf("N size %d, want capped at 10", len(resp.Next))
	}
}

func TestAlgorithm1SizeSoftLimit(t *testing.T) {
	h := newHarness(t, 9, 4)
	h.ad.cfg.MultiBlockSyncHeight = 1000
	h.ad.cfg.MaxResponseBytes = 1 // everything exceeds this after one block
	if _, err := h.miner.MineChain(3, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := h.sim.SyncAll(500_000); err != nil {
		t.Fatal(err)
	}
	h.ad.Start()
	h.run(time.Minute)
	h.ad.HandleRequest(Request{Anchor: h.params.GenesisHeader, AnchorHeight: 0})
	h.run(time.Minute)
	resp := h.ad.HandleRequest(Request{Anchor: h.params.GenesisHeader, AnchorHeight: 0})
	// Soft limit: the first block is included even though it exceeds the
	// budget; the rest are not.
	if len(resp.Blocks) != 1 {
		t.Fatalf("soft limit returned %d blocks, want 1", len(resp.Blocks))
	}
}

func TestTransactionCacheAndAdvertisement(t *testing.T) {
	h := newHarness(t, 10, 4)
	// Fund an address so we can build a valid transaction.
	key, _ := secp256k1.GeneratePrivateKey(rand.New(rand.NewSource(77)))
	miner := btcnode.NewMinerWithKey(h.sim.Nodes[0], key)
	if _, err := miner.MineChain(1, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := h.sim.SyncAll(500_000); err != nil {
		t.Fatal(err)
	}
	h.ad.Start()
	h.run(30 * time.Second)

	addr := btc.AddressFromPubKey(key.PubKey().SerializeCompressed(), h.params.Network)
	utxos := h.sim.Nodes[0].UTXOView().UTXOsForAddress(addr.String())
	tx := &btc.Transaction{
		Version: 2,
		Inputs:  []btc.TxIn{{PreviousOutPoint: utxos[0].OutPoint, Sequence: 0xffffffff}},
		Outputs: []btc.TxOut{{Value: utxos[0].Value - 1000, PkScript: utxos[0].PkScript}},
	}
	if err := btc.SignInput(tx, 0, utxos[0].PkScript, key); err != nil {
		t.Fatal(err)
	}

	h.ad.HandleRequest(Request{
		Anchor:       h.params.GenesisHeader,
		AnchorHeight: 0,
		Txs:          [][]byte{tx.Bytes()},
	})
	if h.ad.TxCacheSize() != 1 {
		t.Fatalf("cache size %d", h.ad.TxCacheSize())
	}
	h.run(30 * time.Second)
	// The transaction must have reached at least one Bitcoin node mempool
	// (and from there gossip onward).
	found := false
	for _, n := range h.sim.Nodes {
		if n.MempoolHas(tx.TxID()) {
			found = true
		}
	}
	if !found {
		t.Fatal("transaction did not reach the Bitcoin network")
	}

	// Cache expiry: after 10 minutes the entry is gone.
	h.run(11 * time.Minute)
	if h.ad.TxCacheSize() != 0 {
		t.Fatalf("cache size %d after expiry", h.ad.TxCacheSize())
	}
}

func TestMalformedTxSkipped(t *testing.T) {
	h := newHarness(t, 11, 3)
	h.ad.Start()
	h.run(2 * time.Second)
	h.ad.HandleRequest(Request{
		Anchor: h.params.GenesisHeader,
		Txs:    [][]byte{{0xde, 0xad}},
	})
	if h.ad.TxCacheSize() != 0 {
		t.Fatal("malformed tx cached")
	}
}

func TestFillConnectionsSelfEntryTerminates(t *testing.T) {
	// Regression: a book whose every entry resolves to the adapter itself
	// (gossip can teach a node its own address under a foreign label) or to
	// an already-connected peer used to spin fillConnections forever — self
	// entries were never removed and never counted as connections, so the
	// len(addressBook) <= len(connected) bail-out could not fire.
	sched := simnet.NewScheduler(1)
	net := simnet.NewNetwork(sched)
	dir := btcnode.NewSeedDirectory()
	cfg := ConfigForNetwork(btc.Regtest)
	cfg.Connections = 2
	ad := New("adapter/self", net, btc.RegtestParams(), dir, cfg)

	// One entry resolving to the adapter itself, one to a peer that is
	// already connected: nothing eligible remains, yet the book is non-empty.
	dir.AddNode("mirror-of-self", ad.ID)
	dir.AddNode("already-peered", "btc/0")
	for _, addr := range []string{"mirror-of-self", "already-peered"} {
		ad.addrSet[addr] = true
		ad.addressBook = append(ad.addressBook, addr)
	}
	ad.connected["btc/0"] = true

	done := make(chan struct{})
	go func() {
		ad.fillConnections()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("fillConnections did not terminate with only self/connected entries in the book")
	}
	if got := len(ad.ConnectedPeers()); got != 1 {
		t.Fatalf("connections changed: %d, want 1", got)
	}
	// The self entry is purged; the connected peer's address stays usable.
	if ad.AddressBookSize() != 1 {
		t.Fatalf("book size %d, want 1 (self entry dropped, peer entry kept)", ad.AddressBookSize())
	}
}

func TestDropConnectionReplenishes(t *testing.T) {
	h := newHarness(t, 12, 6)
	h.ad.Start()
	h.run(5 * time.Second)
	peers := h.ad.ConnectedPeers()
	if len(peers) != 3 {
		t.Fatalf("peers %d", len(peers))
	}
	h.ad.DropConnection(peers[0])
	h.run(5 * time.Second)
	if got := len(h.ad.ConnectedPeers()); got != 3 {
		t.Fatalf("after drop: %d peers, want 3", got)
	}
}

func TestUnknownAnchorReturnsEmpty(t *testing.T) {
	h := newHarness(t, 13, 3)
	h.ad.Start()
	h.run(2 * time.Second)
	foreign := btc.BlockHeader{Version: 9, Bits: h.params.PowLimitBits}
	resp := h.ad.HandleRequest(Request{Anchor: foreign, AnchorHeight: 3})
	if len(resp.Blocks) != 0 || len(resp.Next) != 0 {
		t.Fatal("response for unknown anchor not empty")
	}
}

func TestAdapterStopAndRestart(t *testing.T) {
	// An adapter restart (the node machine's sandboxed process being
	// respawned) must resume syncing from its retained header tree.
	h := newHarness(t, 14, 4)
	if _, err := h.miner.MineChain(3, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := h.sim.SyncAll(500_000); err != nil {
		t.Fatal(err)
	}
	h.ad.Start()
	h.run(time.Minute)
	if h.ad.Tree().MaxHeight() != 3 {
		t.Fatalf("pre-stop height %d", h.ad.Tree().MaxHeight())
	}

	h.ad.Stop()
	if _, err := h.miner.MineChain(3, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := h.sim.SyncAll(500_000); err != nil {
		t.Fatal(err)
	}
	h.run(30 * time.Second)
	if h.ad.Tree().MaxHeight() != 3 {
		t.Fatal("adapter synced while stopped")
	}

	h.ad.Start()
	h.run(time.Minute)
	if h.ad.Tree().MaxHeight() != 6 {
		t.Fatalf("post-restart height %d, want 6", h.ad.Tree().MaxHeight())
	}
}

func TestStoppedAdapterIgnoresNetworkTraffic(t *testing.T) {
	// A Stop()ped adapter must not sync — not even when peers push headers
	// or announce blocks directly, which bypasses the (gated) sync loop.
	h := newHarness(t, 15, 4)
	if _, err := h.miner.MineChain(2, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := h.sim.SyncAll(500_000); err != nil {
		t.Fatal(err)
	}
	h.ad.Start()
	h.run(time.Minute)
	if h.ad.Tree().MaxHeight() != 2 {
		t.Fatalf("pre-stop height %d", h.ad.Tree().MaxHeight())
	}
	h.ad.Stop()

	// Push traffic straight at the stopped adapter: an inv announcement and
	// an unsolicited headers message for a new block.
	blocks, err := h.miner.MineChain(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.sim.SyncAll(500_000); err != nil {
		t.Fatal(err)
	}
	h.ad.Receive(h.sim.Nodes[0].ID, btcnode.MsgInvBlock{Hash: blocks[0].BlockHash()})
	h.ad.Receive(h.sim.Nodes[0].ID, btcnode.MsgHeaders{Headers: []btc.BlockHeader{blocks[0].Header}})
	h.run(30 * time.Second)
	if h.ad.Tree().MaxHeight() != 2 {
		t.Fatalf("stopped adapter accepted headers: height %d", h.ad.Tree().MaxHeight())
	}

	// A rapid Stop/Start cycle must leave exactly one live sync loop, and
	// syncing must resume.
	h.ad.Start()
	h.ad.Stop()
	h.ad.Start()
	h.run(time.Minute)
	if h.ad.Tree().MaxHeight() != 3 {
		t.Fatalf("post-restart height %d, want 3", h.ad.Tree().MaxHeight())
	}
}

func TestBlockRequestInFlightAcrossRestart(t *testing.T) {
	// A block whose getdata was in flight when the adapter stopped (the
	// reply is discarded by the stopped Receive gate) must be re-requested
	// after a restart — Stop clears the in-flight bookkeeping.
	h := newHarness(t, 16, 4)
	blocks, err := h.miner.MineChain(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.sim.SyncAll(500_000); err != nil {
		t.Fatal(err)
	}
	h.ad.Start()
	h.run(10 * time.Second)
	hash := blocks[0].BlockHash()

	// Request the block, then stop before the reply can be processed.
	if b := h.ad.getBlock(hash); b != nil {
		t.Fatal("block present before any reply")
	}
	h.ad.Stop()
	h.run(30 * time.Second) // replies arrive and are dropped
	if h.ad.HasBlock(hash) {
		t.Fatal("stopped adapter stored a block")
	}

	h.ad.Start()
	if b := h.ad.getBlock(hash); b != nil {
		t.Fatal("block cannot be present before the re-request round trip")
	}
	h.run(30 * time.Second)
	if !h.ad.HasBlock(hash) {
		t.Fatal("in-flight block never re-requested after restart")
	}
}

func TestStoppedAdapterServesNoRequests(t *testing.T) {
	// A request handled between Stop and Start used to poison the in-flight
	// block bookkeeping: getdata went out from the "torn down" process, the
	// reply was dropped by the stopped Receive gate, and — because Start
	// does not clear requestedBlocks — the block was never re-requested
	// after the restart. The canister's payload builder calls HandleRequest
	// every round regardless of adapter state, so long runs hit this stall.
	h := newHarness(t, 17, 4)
	blocks, err := h.miner.MineChain(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.sim.SyncAll(500_000); err != nil {
		t.Fatal(err)
	}
	h.ad.Start()
	h.run(10 * time.Second)
	h.ad.Stop()

	// The canister keeps asking while the adapter process is down.
	req := Request{Anchor: h.params.GenesisHeader, AnchorHeight: 0}
	resp := h.ad.HandleRequest(req)
	if len(resp.Blocks) != 0 || len(resp.Next) != 0 {
		t.Fatal("stopped adapter served a response")
	}
	if len(h.ad.requestedBlocks) != 0 {
		t.Fatal("stopped adapter recorded in-flight block requests")
	}
	h.run(10 * time.Second)

	// After the restart the block must be fetched and served — with the
	// stale in-flight entry present this never happened.
	h.ad.Start()
	h.ad.HandleRequest(req) // triggers the (re-)request
	h.run(30 * time.Second)
	hash := blocks[0].BlockHash()
	if !h.ad.HasBlock(hash) {
		t.Fatal("block never fetched after restart (stale in-flight state)")
	}
	resp = h.ad.HandleRequest(req)
	if len(resp.Blocks) != 1 {
		t.Fatalf("post-restart response carried %d blocks, want 1", len(resp.Blocks))
	}
}

func TestStoppedAdapterDropConnectionStaysQuiet(t *testing.T) {
	// DropConnection on a stopped adapter must only record the disconnect:
	// no discovery traffic, no replacement connection, until Start.
	h := newHarness(t, 18, 6)
	h.ad.Start()
	h.run(5 * time.Second)
	peers := h.ad.ConnectedPeers()
	if len(peers) != 3 {
		t.Fatalf("peers %d, want 3", len(peers))
	}
	h.ad.Stop()
	h.ad.DropConnection(peers[0])
	h.run(10 * time.Second)
	if got := len(h.ad.ConnectedPeers()); got != 2 {
		t.Fatalf("stopped adapter reconnected: %d peers, want 2", got)
	}
	h.ad.Start()
	h.run(5 * time.Second)
	if got := len(h.ad.ConnectedPeers()); got != 3 {
		t.Fatalf("restart did not refill connections: %d peers, want 3", got)
	}
}

func TestRapidStopStartKeepsSingleSyncLoop(t *testing.T) {
	// Stop now bumps the sync generation itself, so a tick scheduled before
	// Stop is invalid on both gates; rapid Stop/Start cycles must leave
	// exactly one live loop and steady header progress.
	h := newHarness(t, 19, 4)
	if _, err := h.miner.MineChain(2, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := h.sim.SyncAll(500_000); err != nil {
		t.Fatal(err)
	}
	h.ad.Start()
	for i := 0; i < 5; i++ {
		h.ad.Stop()
		h.ad.Start()
	}
	h.run(time.Minute)
	if got := h.ad.Tree().MaxHeight(); got != 2 {
		t.Fatalf("height %d after stop/start churn, want 2", got)
	}
	if h.ad.syncGen != 11 { // 6 Starts + 5 Stops each bump the generation
		t.Fatalf("syncGen %d, want 11", h.ad.syncGen)
	}
}
