package adapter

import "icbtc/internal/obs"

// adapterMetrics is the adapter's obs instrumentation: the request/retry
// lifecycle, peer-health strikes (timeouts, invalid data, bans), header
// intake, and coarse state transitions. Everything here counts events that
// are deterministic under the seeded scheduler; the one duration metric
// (getheaders latency) is measured between two scheduler timestamps, so a
// same-seed run reproduces it bit for bit.
type adapterMetrics struct {
	reg *obs.Registry

	// requests counts getdata issues for blocks; retries the subset that
	// re-issued after a deadline miss.
	requests *obs.Counter
	retries  *obs.Counter
	// timeouts / invalid / bans mirror the peer-health strike ledger.
	timeouts *obs.Counter
	invalid  *obs.Counter
	bans     *obs.Counter
	// responses counts every liveness-bearing peer message (noteResponse).
	responses       *obs.Counter
	headersAccepted *obs.Counter
	headersRejected *obs.Counter
	blocksStored    *obs.Counter
	// stateChanges counts entries INTO each state (label "state"), bumped
	// only on an actual transition — the stall detector re-asserting
	// degraded every tick does not inflate it.
	stateChanges *obs.Family
	// headerLatency is the getheaders round-trip, scheduler-clocked.
	headerLatency *obs.Histogram
}

func newAdapterMetrics() *adapterMetrics {
	r := obs.NewRegistry()
	return &adapterMetrics{
		reg:             r,
		requests:        r.Counter("adapter_block_requests_total"),
		retries:         r.Counter("adapter_block_retries_total"),
		timeouts:        r.Counter("adapter_peer_timeouts_total"),
		invalid:         r.Counter("adapter_peer_invalid_total"),
		bans:            r.Counter("adapter_peer_bans_total"),
		responses:       r.Counter("adapter_responses_total"),
		headersAccepted: r.Counter("adapter_headers_accepted_total"),
		headersRejected: r.Counter("adapter_headers_rejected_total"),
		blocksStored:    r.Counter("adapter_blocks_stored_total"),
		stateChanges:    r.Family("adapter_state_transitions_total", "state"),
		headerLatency:   r.Histogram("adapter_getheaders_latency_ns", obs.DurationBuckets),
	}
}

// Metrics returns the adapter's obs registry. Seeded drivers install the
// scheduler clock on it; the adapter itself never reads wall time.
func (a *Adapter) Metrics() *obs.Registry { return a.met.reg }
