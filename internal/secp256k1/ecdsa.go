package secp256k1

import (
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"errors"
	"fmt"
	"io"
	"math/big"
)

// PrivateKey is a secp256k1 private key (a scalar in [1, n-1]).
type PrivateKey struct {
	D *big.Int
}

// PublicKey is a secp256k1 public key (a non-identity curve point).
type PublicKey struct {
	Point
}

// GeneratePrivateKey samples a uniformly random private key from r
// (crypto/rand.Reader if r is nil).
func GeneratePrivateKey(r io.Reader) (*PrivateKey, error) {
	if r == nil {
		r = rand.Reader
	}
	for {
		buf := make([]byte, 32)
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, fmt.Errorf("secp256k1: sampling key: %w", err)
		}
		d := new(big.Int).SetBytes(buf)
		d.Mod(d, curveN)
		if d.Sign() != 0 {
			return &PrivateKey{D: d}, nil
		}
	}
}

// PrivateKeyFromBytes builds a private key from a 32-byte big-endian scalar.
func PrivateKeyFromBytes(b []byte) (*PrivateKey, error) {
	d := new(big.Int).SetBytes(b)
	if d.Sign() == 0 || d.Cmp(curveN) >= 0 {
		return nil, errors.New("secp256k1: private key scalar out of range")
	}
	return &PrivateKey{D: d}, nil
}

// PubKey derives the public key d*G.
func (k *PrivateKey) PubKey() *PublicKey {
	return &PublicKey{Point: ScalarBaseMult(k.D)}
}

// Serialize returns the 32-byte big-endian scalar.
func (k *PrivateKey) Serialize() []byte {
	out := make([]byte, 32)
	k.D.FillBytes(out)
	return out
}

// ParsePubKey decodes a compressed or uncompressed SEC public key.
func ParsePubKey(data []byte) (*PublicKey, error) {
	pt, err := ParsePoint(data)
	if err != nil {
		return nil, err
	}
	if pt.Infinity() {
		return nil, ErrInvalidPoint
	}
	return &PublicKey{Point: pt}, nil
}

// Signature is an ECDSA signature (r, s) with s normalized to the lower half
// of the group order (Bitcoin's "low-S" rule, BIP 62).
type Signature struct {
	R, S *big.Int
}

// hashToScalar converts a message digest to a scalar per SEC1 §4.1.3
// (truncate to the bit length of n, then reduce).
func hashToScalar(digest []byte) *big.Int {
	z := new(big.Int).SetBytes(digest)
	excess := len(digest)*8 - curveN.BitLen()
	if excess > 0 {
		z.Rsh(z, uint(excess))
	}
	return z.Mod(z, curveN)
}

// rfc6979Nonce derives a deterministic nonce from the key and digest
// following the HMAC-DRBG construction of RFC 6979.
func rfc6979Nonce(d *big.Int, digest []byte, extra byte) *big.Int {
	x := make([]byte, 32)
	d.FillBytes(x)
	h1 := make([]byte, 32)
	hashToScalar(digest).FillBytes(h1)

	v := make([]byte, 32)
	k := make([]byte, 32)
	for i := range v {
		v[i] = 0x01
	}

	mac := func(key []byte, parts ...[]byte) []byte {
		m := hmac.New(sha256.New, key)
		for _, p := range parts {
			m.Write(p)
		}
		return m.Sum(nil)
	}

	// K = HMAC(K, V || 0x00 || x || h1 [|| extra])
	suffix := []byte{}
	if extra != 0 {
		suffix = []byte{extra}
	}
	k = mac(k, v, []byte{0x00}, x, h1, suffix)
	v = mac(k, v)
	k = mac(k, v, []byte{0x01}, x, h1, suffix)
	v = mac(k, v)

	for {
		v = mac(k, v)
		t := new(big.Int).SetBytes(v)
		if t.Sign() > 0 && t.Cmp(curveN) < 0 {
			return t
		}
		k = mac(k, v, []byte{0x00})
		v = mac(k, v)
	}
}

// Sign produces a deterministic ECDSA signature over a 32-byte digest.
func (k *PrivateKey) Sign(digest []byte) (*Signature, error) {
	if len(digest) != 32 {
		return nil, fmt.Errorf("secp256k1: digest must be 32 bytes, got %d", len(digest))
	}
	z := hashToScalar(digest)
	for extra := byte(0); ; extra++ {
		nonce := rfc6979Nonce(k.D, digest, extra)
		sig, err := signWithNonce(k.D, z, nonce)
		if err == nil {
			return sig, nil
		}
		if extra == 255 {
			return nil, errors.New("secp256k1: nonce derivation failed")
		}
	}
}

var errRetryNonce = errors.New("secp256k1: retry with different nonce")

// signWithNonce computes (r, s) for a fixed nonce. It is shared by the local
// signer and by the threshold-signing test vectors.
func signWithNonce(d, z, nonce *big.Int) (*Signature, error) {
	rp := ScalarBaseMult(nonce)
	if rp.Infinity() {
		return nil, errRetryNonce
	}
	r := new(big.Int).Mod(rp.X, curveN)
	if r.Sign() == 0 {
		return nil, errRetryNonce
	}
	kInv := new(big.Int).ModInverse(nonce, curveN)
	s := new(big.Int).Mul(r, d)
	s.Add(s, z)
	s.Mul(s, kInv)
	s.Mod(s, curveN)
	if s.Sign() == 0 {
		return nil, errRetryNonce
	}
	sig := &Signature{R: r, S: s}
	sig.normalizeS()
	return sig, nil
}

// normalizeS enforces the low-S rule in place.
func (s *Signature) normalizeS() {
	if s.S.Cmp(halfN) > 0 {
		s.S = new(big.Int).Sub(curveN, s.S)
	}
}

// Verify reports whether the signature is valid over digest under pub.
func (s *Signature) Verify(digest []byte, pub *PublicKey) bool {
	if pub == nil || pub.Infinity() || len(digest) != 32 {
		return false
	}
	if s.R.Sign() <= 0 || s.R.Cmp(curveN) >= 0 || s.S.Sign() <= 0 || s.S.Cmp(curveN) >= 0 {
		return false
	}
	z := hashToScalar(digest)
	w := new(big.Int).ModInverse(s.S, curveN)
	u1 := new(big.Int).Mul(z, w)
	u1.Mod(u1, curveN)
	u2 := new(big.Int).Mul(s.R, w)
	u2.Mod(u2, curveN)
	pt := Add(ScalarBaseMult(u1), ScalarMult(pub.Point, u2))
	if pt.Infinity() {
		return false
	}
	v := new(big.Int).Mod(pt.X, curveN)
	return v.Cmp(s.R) == 0
}

// SerializeDER encodes the signature using ASN.1 DER as Bitcoin expects
// (minimal positive INTEGERs inside a SEQUENCE).
func (s *Signature) SerializeDER() []byte {
	r := derInt(s.R)
	sb := derInt(s.S)
	body := make([]byte, 0, len(r)+len(sb)+4)
	body = append(body, 0x02, byte(len(r)))
	body = append(body, r...)
	body = append(body, 0x02, byte(len(sb)))
	body = append(body, sb...)
	out := make([]byte, 0, len(body)+2)
	out = append(out, 0x30, byte(len(body)))
	return append(out, body...)
}

func derInt(v *big.Int) []byte {
	b := v.Bytes()
	if len(b) == 0 {
		return []byte{0x00}
	}
	if b[0]&0x80 != 0 {
		return append([]byte{0x00}, b...)
	}
	return b
}

// ParseDERSignature decodes a DER-encoded ECDSA signature.
func ParseDERSignature(data []byte) (*Signature, error) {
	bad := func(why string) error { return fmt.Errorf("secp256k1: bad DER signature: %s", why) }
	if len(data) < 8 || data[0] != 0x30 {
		return nil, bad("missing sequence")
	}
	if int(data[1]) != len(data)-2 {
		return nil, bad("length mismatch")
	}
	rest := data[2:]
	readInt := func() (*big.Int, error) {
		if len(rest) < 2 || rest[0] != 0x02 {
			return nil, bad("missing integer")
		}
		n := int(rest[1])
		if n == 0 || n > len(rest)-2 {
			return nil, bad("integer length")
		}
		raw := rest[2 : 2+n]
		if raw[0]&0x80 != 0 {
			return nil, bad("negative integer")
		}
		if n > 1 && raw[0] == 0x00 && raw[1]&0x80 == 0 {
			return nil, bad("non-minimal integer")
		}
		rest = rest[2+n:]
		return new(big.Int).SetBytes(raw), nil
	}
	r, err := readInt()
	if err != nil {
		return nil, err
	}
	sv, err := readInt()
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, bad("trailing bytes")
	}
	return &Signature{R: r, S: sv}, nil
}

// SerializeCompact encodes the signature as 64 bytes (r || s).
func (s *Signature) SerializeCompact() []byte {
	out := make([]byte, 64)
	s.R.FillBytes(out[:32])
	s.S.FillBytes(out[32:])
	return out
}

// ParseCompactSignature decodes a 64-byte r||s signature.
func ParseCompactSignature(data []byte) (*Signature, error) {
	if len(data) != 64 {
		return nil, fmt.Errorf("secp256k1: compact signature must be 64 bytes, got %d", len(data))
	}
	return &Signature{
		R: new(big.Int).SetBytes(data[:32]),
		S: new(big.Int).SetBytes(data[32:]),
	}, nil
}
