package secp256k1

import (
	"bytes"
	"crypto/sha256"
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGeneratorOnCurve(t *testing.T) {
	g := Generator()
	if !g.OnCurve() {
		t.Fatal("generator not on curve")
	}
}

func TestGroupOrder(t *testing.T) {
	// n*G must be the point at infinity.
	if pt := ScalarBaseMult(N()); !pt.Infinity() {
		t.Fatalf("n*G = %v, want infinity", pt)
	}
	// (n-1)*G + G must be infinity too.
	nm1 := new(big.Int).Sub(N(), big.NewInt(1))
	if pt := Add(ScalarBaseMult(nm1), Generator()); !pt.Infinity() {
		t.Fatalf("(n-1)*G + G = %v, want infinity", pt)
	}
}

func TestKnownScalarMultVectors(t *testing.T) {
	// Well-known test vectors: k*G x/y for small k.
	tests := []struct {
		k    int64
		x, y string
	}{
		{1,
			"79be667ef9dcbbac55a06295ce870b07029bfcdb2dce28d959f2815b16f81798",
			"483ada7726a3c4655da4fbfc0e1108a8fd17b448a68554199c47d08ffb10d4b8"},
		{2,
			"c6047f9441ed7d6d3045406e95c07cd85c778e4b8cef3ca7abac09b95c709ee5",
			"1ae168fea63dc339a3c58419466ceaeef7f632653266d0e1236431a950cfe52a"},
		{3,
			"f9308a019258c31049344f85f89d5229b531c845836f99b08601f113bce036f9",
			"388f7b0f632de8140fe337e62a37f3566500a99934c2231b6cb9fd7584b8e672"},
		{7,
			"5cbdf0646e5db4eaa398f365f2ea7a0e3d419b7e0330e39ce92bddedcac4f9bc",
			"6aebca40ba255960a3178d6d861a54dba813d0b813fde7b5a5082628087264da"},
	}
	for _, tc := range tests {
		got := ScalarBaseMult(big.NewInt(tc.k))
		if got.X.Text(16) != tc.x || got.Y.Text(16) != tc.y {
			t.Errorf("k=%d: got (%s, %s), want (%s, %s)",
				tc.k, got.X.Text(16), got.Y.Text(16), tc.x, tc.y)
		}
	}
}

func TestAddCommutativeAssociative(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 20; i++ {
		a := ScalarBaseMult(randScalar(rng))
		b := ScalarBaseMult(randScalar(rng))
		c := ScalarBaseMult(randScalar(rng))
		if !Add(a, b).Equal(Add(b, a)) {
			t.Fatal("addition not commutative")
		}
		if !Add(Add(a, b), c).Equal(Add(a, Add(b, c))) {
			t.Fatal("addition not associative")
		}
	}
}

func TestAddInverse(t *testing.T) {
	p := ScalarBaseMult(big.NewInt(42))
	if !Add(p, p.Neg()).Infinity() {
		t.Fatal("p + (-p) != infinity")
	}
	if !Add(p, Point{}).Equal(p) {
		t.Fatal("p + 0 != p")
	}
	if !Add(Point{}, p).Equal(p) {
		t.Fatal("0 + p != p")
	}
}

func TestScalarMultDistributes(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 10; i++ {
		a, b := randScalar(rng), randScalar(rng)
		sum := new(big.Int).Add(a, b)
		lhs := ScalarBaseMult(sum)
		rhs := Add(ScalarBaseMult(a), ScalarBaseMult(b))
		if !lhs.Equal(rhs) {
			t.Fatalf("(a+b)G != aG + bG for a=%v b=%v", a, b)
		}
	}
}

func TestDoubleMatchesAdd(t *testing.T) {
	p := ScalarBaseMult(big.NewInt(99))
	if !Double(p).Equal(Add(p, p)) {
		t.Fatal("double(p) != p+p")
	}
}

func TestPointSerializationRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 20; i++ {
		p := ScalarBaseMult(randScalar(rng))
		for _, enc := range [][]byte{p.SerializeCompressed(), p.SerializeUncompressed()} {
			got, err := ParsePoint(enc)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			if !got.Equal(p) {
				t.Fatalf("round trip mismatch: %v != %v", got, p)
			}
		}
	}
}

func TestParsePointRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{0x02},
		make([]byte, 33), // x=0 prefix 0x00
		append([]byte{0x05}, make([]byte, 32)...),
		append([]byte{0x04}, make([]byte, 64)...), // (0,0) not on curve
	}
	for i, c := range cases {
		if _, err := ParsePoint(c); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
	// x >= p must be rejected.
	bad := make([]byte, 33)
	bad[0] = 0x02
	P().FillBytes(bad[1:])
	if _, err := ParsePoint(bad); err == nil {
		t.Error("x >= p accepted")
	}
}

func TestECDSASignVerify(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 10; i++ {
		key := testKey(t, rng)
		digest := sha256.Sum256([]byte{byte(i)})
		sig, err := key.Sign(digest[:])
		if err != nil {
			t.Fatalf("sign: %v", err)
		}
		if !sig.Verify(digest[:], key.PubKey()) {
			t.Fatal("signature did not verify")
		}
		// Low-S must hold.
		if sig.S.Cmp(halfN) > 0 {
			t.Fatal("signature not low-S normalized")
		}
		// Tampered digest must fail.
		bad := sha256.Sum256([]byte{byte(i), 0xFF})
		if sig.Verify(bad[:], key.PubKey()) {
			t.Fatal("signature verified against wrong digest")
		}
		// Wrong key must fail.
		other := testKey(t, rng)
		if sig.Verify(digest[:], other.PubKey()) {
			t.Fatal("signature verified under wrong key")
		}
	}
}

func TestECDSADeterministic(t *testing.T) {
	key := mustKey(t, 12345)
	digest := sha256.Sum256([]byte("deterministic"))
	s1, err := key.Sign(digest[:])
	if err != nil {
		t.Fatal(err)
	}
	s2, err := key.Sign(digest[:])
	if err != nil {
		t.Fatal(err)
	}
	if s1.R.Cmp(s2.R) != 0 || s1.S.Cmp(s2.S) != 0 {
		t.Fatal("deterministic signing produced different signatures")
	}
}

func TestDERRoundTrip(t *testing.T) {
	key := mustKey(t, 777)
	digest := sha256.Sum256([]byte("der"))
	sig, err := key.Sign(digest[:])
	if err != nil {
		t.Fatal(err)
	}
	der := sig.SerializeDER()
	got, err := ParseDERSignature(der)
	if err != nil {
		t.Fatalf("parse DER: %v", err)
	}
	if got.R.Cmp(sig.R) != 0 || got.S.Cmp(sig.S) != 0 {
		t.Fatal("DER round trip mismatch")
	}
}

func TestDERRejectsMalformed(t *testing.T) {
	key := mustKey(t, 778)
	digest := sha256.Sum256([]byte("der2"))
	sig, _ := key.Sign(digest[:])
	der := sig.SerializeDER()

	cases := map[string][]byte{
		"empty":        {},
		"not-sequence": append([]byte{0x31}, der[1:]...),
		"truncated":    der[:len(der)-1],
		"trailing":     append(append([]byte{}, der...), 0x00),
	}
	// Fix up lengths where needed: truncated/trailing get caught by checks.
	for name, data := range cases {
		if _, err := ParseDERSignature(data); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestCompactSignatureRoundTrip(t *testing.T) {
	key := mustKey(t, 779)
	digest := sha256.Sum256([]byte("compact"))
	sig, _ := key.Sign(digest[:])
	got, err := ParseCompactSignature(sig.SerializeCompact())
	if err != nil {
		t.Fatal(err)
	}
	if got.R.Cmp(sig.R) != 0 || got.S.Cmp(sig.S) != 0 {
		t.Fatal("compact round trip mismatch")
	}
	if _, err := ParseCompactSignature(make([]byte, 63)); err == nil {
		t.Fatal("short compact signature accepted")
	}
}

func TestSchnorrSignVerify(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 10; i++ {
		key := testKey(t, rng)
		msg := sha256.Sum256([]byte{0xAA, byte(i)})
		sig, err := key.SchnorrSign(msg[:])
		if err != nil {
			t.Fatalf("schnorr sign: %v", err)
		}
		px := new(big.Int).SetBytes(key.PubKey().XOnlyPubKey())
		if !SchnorrVerify(sig, msg[:], px) {
			t.Fatal("schnorr signature did not verify")
		}
		bad := sha256.Sum256([]byte{0xBB, byte(i)})
		if SchnorrVerify(sig, bad[:], px) {
			t.Fatal("schnorr verified wrong message")
		}
	}
}

func TestSchnorrSerializationRoundTrip(t *testing.T) {
	key := mustKey(t, 31337)
	msg := sha256.Sum256([]byte("schnorr-io"))
	sig, err := key.SchnorrSign(msg[:])
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseSchnorrSignature(sig.Serialize())
	if err != nil {
		t.Fatal(err)
	}
	if got.RX.Cmp(sig.RX) != 0 || got.S.Cmp(sig.S) != 0 {
		t.Fatal("schnorr serialization round trip mismatch")
	}
}

func TestPrivateKeyFromBytesRange(t *testing.T) {
	if _, err := PrivateKeyFromBytes(make([]byte, 32)); err == nil {
		t.Fatal("zero key accepted")
	}
	nb := make([]byte, 32)
	N().FillBytes(nb)
	if _, err := PrivateKeyFromBytes(nb); err == nil {
		t.Fatal("key == n accepted")
	}
	one := make([]byte, 32)
	one[31] = 1
	if _, err := PrivateKeyFromBytes(one); err != nil {
		t.Fatalf("key 1 rejected: %v", err)
	}
}

// Property: signing then verifying always succeeds for any seed/message pair.
func TestQuickSignVerify(t *testing.T) {
	f := func(seed int64, msg []byte) bool {
		if seed == 0 {
			seed = 1
		}
		key := mustKeyQuick(seed)
		digest := sha256.Sum256(msg)
		sig, err := key.Sign(digest[:])
		if err != nil {
			return false
		}
		return sig.Verify(digest[:], key.PubKey())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: compressed serialization round-trips for arbitrary scalars.
func TestQuickPointRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		if seed == 0 {
			seed = 1
		}
		p := ScalarBaseMult(big.NewInt(seed).Abs(big.NewInt(seed)))
		if p.Infinity() {
			return true
		}
		got, err := ParsePoint(p.SerializeCompressed())
		return err == nil && got.Equal(p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestConstantTimeEq(t *testing.T) {
	if !constantTimeEq([]byte{1, 2}, []byte{1, 2}) {
		t.Fatal("equal slices reported unequal")
	}
	if constantTimeEq([]byte{1, 2}, []byte{1, 3}) || constantTimeEq([]byte{1}, []byte{1, 2}) {
		t.Fatal("unequal slices reported equal")
	}
}

func TestXOnlyLiftRoundTrip(t *testing.T) {
	key := mustKey(t, 55)
	pub := key.PubKey()
	x := new(big.Int).SetBytes(pub.XOnlyPubKey())
	y, err := liftX(x, false)
	if err != nil {
		t.Fatal(err)
	}
	pt := Point{X: x, Y: y}
	if !pt.OnCurve() {
		t.Fatal("lifted point not on curve")
	}
	if y.Bit(0) != 0 {
		t.Fatal("liftX(even) returned odd y")
	}
}

func TestSerializeCompressedPrefix(t *testing.T) {
	key := mustKey(t, 88)
	enc := key.PubKey().SerializeCompressed()
	if enc[0] != 0x02 && enc[0] != 0x03 {
		t.Fatalf("bad prefix %x", enc[0])
	}
	if len(enc) != 33 {
		t.Fatalf("bad length %d", len(enc))
	}
	if bytes.Equal(enc[1:], make([]byte, 32)) {
		t.Fatal("zero x coordinate")
	}
}

// --- helpers ---

func randScalar(rng *rand.Rand) *big.Int {
	buf := make([]byte, 32)
	rng.Read(buf)
	v := new(big.Int).SetBytes(buf)
	v.Mod(v, curveN)
	if v.Sign() == 0 {
		v.SetInt64(1)
	}
	return v
}

func testKey(t *testing.T, rng *rand.Rand) *PrivateKey {
	t.Helper()
	return &PrivateKey{D: randScalar(rng)}
}

func mustKey(t *testing.T, seed int64) *PrivateKey {
	t.Helper()
	return mustKeyQuick(seed)
}

func mustKeyQuick(seed int64) *PrivateKey {
	rng := rand.New(rand.NewSource(seed))
	return &PrivateKey{D: randScalar(rng)}
}
