// Package secp256k1 implements the secp256k1 elliptic curve used by Bitcoin,
// together with deterministic ECDSA (RFC 6979 style), DER signature encoding,
// and BIP340-style Schnorr signatures.
//
// The Go standard library does not ship secp256k1, so the curve is implemented
// from scratch on top of math/big. Performance is adequate for simulation and
// testing purposes; constant-time execution is explicitly a non-goal (this is
// a research reproduction, not a wallet).
package secp256k1

import (
	"crypto/subtle"
	"errors"
	"fmt"
	"math/big"
)

// Curve parameters for secp256k1 (SEC 2, §2.4.1):
//
//	p  = 2^256 - 2^32 - 977
//	a  = 0, b = 7
//	Gx, Gy = base point
//	n  = group order
var (
	curveP  = mustHex("fffffffffffffffffffffffffffffffffffffffffffffffffffffffefffffc2f")
	curveN  = mustHex("fffffffffffffffffffffffffffffffebaaedce6af48a03bbfd25e8cd0364141")
	curveB  = big.NewInt(7)
	curveGx = mustHex("79be667ef9dcbbac55a06295ce870b07029bfcdb2dce28d959f2815b16f81798")
	curveGy = mustHex("483ada7726a3c4655da4fbfc0e1108a8fd17b448a68554199c47d08ffb10d4b8")

	// halfN is n/2, used for low-S normalization.
	halfN = new(big.Int).Rsh(curveN, 1)
)

func mustHex(s string) *big.Int {
	v, ok := new(big.Int).SetString(s, 16)
	if !ok {
		panic("secp256k1: bad hex constant " + s)
	}
	return v
}

// P returns the field prime (a copy).
func P() *big.Int { return new(big.Int).Set(curveP) }

// N returns the group order (a copy).
func N() *big.Int { return new(big.Int).Set(curveN) }

// Point is an affine point on the curve. The zero value is the point at
// infinity (the group identity).
type Point struct {
	X, Y *big.Int
}

// Infinity reports whether p is the point at infinity.
func (p Point) Infinity() bool { return p.X == nil || p.Y == nil }

// Generator returns the base point G.
func Generator() Point {
	return Point{X: new(big.Int).Set(curveGx), Y: new(big.Int).Set(curveGy)}
}

// OnCurve reports whether p satisfies y^2 = x^3 + 7 (mod p). The point at
// infinity is on the curve.
func (p Point) OnCurve() bool {
	if p.Infinity() {
		return true
	}
	if p.X.Sign() < 0 || p.X.Cmp(curveP) >= 0 || p.Y.Sign() < 0 || p.Y.Cmp(curveP) >= 0 {
		return false
	}
	y2 := new(big.Int).Mul(p.Y, p.Y)
	y2.Mod(y2, curveP)
	x3 := new(big.Int).Mul(p.X, p.X)
	x3.Mod(x3, curveP)
	x3.Mul(x3, p.X)
	x3.Add(x3, curveB)
	x3.Mod(x3, curveP)
	return y2.Cmp(x3) == 0
}

// Equal reports whether two points are the same group element.
func (p Point) Equal(q Point) bool {
	if p.Infinity() || q.Infinity() {
		return p.Infinity() && q.Infinity()
	}
	return p.X.Cmp(q.X) == 0 && p.Y.Cmp(q.Y) == 0
}

// Neg returns -p.
func (p Point) Neg() Point {
	if p.Infinity() {
		return Point{}
	}
	return Point{X: new(big.Int).Set(p.X), Y: new(big.Int).Sub(curveP, p.Y)}
}

// jacobian is an internal projective representation: x = X/Z^2, y = Y/Z^3.
type jacobian struct {
	x, y, z *big.Int
}

func toJacobian(p Point) jacobian {
	if p.Infinity() {
		return jacobian{x: big.NewInt(1), y: big.NewInt(1), z: big.NewInt(0)}
	}
	return jacobian{
		x: new(big.Int).Set(p.X),
		y: new(big.Int).Set(p.Y),
		z: big.NewInt(1),
	}
}

func (j jacobian) infinity() bool { return j.z.Sign() == 0 }

func (j jacobian) toAffine() Point {
	if j.infinity() {
		return Point{}
	}
	zInv := new(big.Int).ModInverse(j.z, curveP)
	zInv2 := new(big.Int).Mul(zInv, zInv)
	zInv2.Mod(zInv2, curveP)
	x := new(big.Int).Mul(j.x, zInv2)
	x.Mod(x, curveP)
	zInv3 := zInv2.Mul(zInv2, zInv)
	zInv3.Mod(zInv3, curveP)
	y := new(big.Int).Mul(j.y, zInv3)
	y.Mod(y, curveP)
	return Point{X: x, Y: y}
}

func modP(v *big.Int) *big.Int { return v.Mod(v, curveP) }

// double returns 2*j using the standard Jacobian doubling formulas for a=0.
func (j jacobian) double() jacobian {
	if j.infinity() || j.y.Sign() == 0 {
		return jacobian{x: big.NewInt(1), y: big.NewInt(1), z: big.NewInt(0)}
	}
	// A = X^2, B = Y^2, C = B^2
	a := modP(new(big.Int).Mul(j.x, j.x))
	b := modP(new(big.Int).Mul(j.y, j.y))
	c := modP(new(big.Int).Mul(b, b))
	// D = 2*((X+B)^2 - A - C)
	d := new(big.Int).Add(j.x, b)
	d.Mul(d, d)
	d.Sub(d, a)
	d.Sub(d, c)
	d.Lsh(d, 1)
	modP(d)
	// E = 3*A, F = E^2
	e := new(big.Int).Lsh(a, 1)
	e.Add(e, a)
	modP(e)
	f := modP(new(big.Int).Mul(e, e))
	// X' = F - 2*D
	x3 := new(big.Int).Lsh(d, 1)
	x3.Sub(f, x3)
	modP(x3)
	// Y' = E*(D - X') - 8*C
	y3 := new(big.Int).Sub(d, x3)
	y3.Mul(y3, e)
	c8 := new(big.Int).Lsh(c, 3)
	y3.Sub(y3, c8)
	modP(y3)
	// Z' = 2*Y*Z
	z3 := new(big.Int).Mul(j.y, j.z)
	z3.Lsh(z3, 1)
	modP(z3)
	return jacobian{x: x3, y: y3, z: z3}
}

// add returns j + q (mixed or general Jacobian addition).
func (j jacobian) add(q jacobian) jacobian {
	if j.infinity() {
		return q
	}
	if q.infinity() {
		return j
	}
	z1z1 := modP(new(big.Int).Mul(j.z, j.z))
	z2z2 := modP(new(big.Int).Mul(q.z, q.z))
	u1 := modP(new(big.Int).Mul(j.x, z2z2))
	u2 := modP(new(big.Int).Mul(q.x, z1z1))
	s1 := modP(new(big.Int).Mul(new(big.Int).Mul(j.y, q.z), z2z2))
	s2 := modP(new(big.Int).Mul(new(big.Int).Mul(q.y, j.z), z1z1))
	if u1.Cmp(u2) == 0 {
		if s1.Cmp(s2) != 0 {
			return jacobian{x: big.NewInt(1), y: big.NewInt(1), z: big.NewInt(0)}
		}
		return j.double()
	}
	h := new(big.Int).Sub(u2, u1)
	modP(h)
	i := new(big.Int).Lsh(h, 1)
	i.Mul(i, i)
	modP(i)
	jj := modP(new(big.Int).Mul(h, i))
	r := new(big.Int).Sub(s2, s1)
	r.Lsh(r, 1)
	modP(r)
	v := modP(new(big.Int).Mul(u1, i))
	x3 := new(big.Int).Mul(r, r)
	x3.Sub(x3, jj)
	x3.Sub(x3, new(big.Int).Lsh(v, 1))
	modP(x3)
	y3 := new(big.Int).Sub(v, x3)
	y3.Mul(y3, r)
	s1jj := new(big.Int).Mul(s1, jj)
	s1jj.Lsh(s1jj, 1)
	y3.Sub(y3, s1jj)
	modP(y3)
	z3 := new(big.Int).Add(j.z, q.z)
	z3.Mul(z3, z3)
	z3.Sub(z3, z1z1)
	z3.Sub(z3, z2z2)
	z3.Mul(z3, h)
	modP(z3)
	return jacobian{x: x3, y: y3, z: z3}
}

// Add returns p + q.
func Add(p, q Point) Point {
	return toJacobian(p).add(toJacobian(q)).toAffine()
}

// Double returns 2*p.
func Double(p Point) Point {
	return toJacobian(p).double().toAffine()
}

// ScalarMult returns k*p with k reduced modulo n.
func ScalarMult(p Point, k *big.Int) Point {
	kk := new(big.Int).Mod(k, curveN)
	if kk.Sign() == 0 || p.Infinity() {
		return Point{}
	}
	acc := jacobian{x: big.NewInt(1), y: big.NewInt(1), z: big.NewInt(0)}
	base := toJacobian(p)
	for i := kk.BitLen() - 1; i >= 0; i-- {
		acc = acc.double()
		if kk.Bit(i) == 1 {
			acc = acc.add(base)
		}
	}
	return acc.toAffine()
}

// ScalarBaseMult returns k*G.
func ScalarBaseMult(k *big.Int) Point {
	return ScalarMult(Generator(), k)
}

// SerializeCompressed returns the 33-byte SEC compressed encoding of p.
func (p Point) SerializeCompressed() []byte {
	if p.Infinity() {
		return make([]byte, 33)
	}
	out := make([]byte, 33)
	if p.Y.Bit(0) == 0 {
		out[0] = 0x02
	} else {
		out[0] = 0x03
	}
	p.X.FillBytes(out[1:])
	return out
}

// SerializeUncompressed returns the 65-byte SEC uncompressed encoding of p.
func (p Point) SerializeUncompressed() []byte {
	out := make([]byte, 65)
	out[0] = 0x04
	if p.Infinity() {
		return out
	}
	p.X.FillBytes(out[1:33])
	p.Y.FillBytes(out[33:])
	return out
}

// ErrInvalidPoint is returned when a serialized point cannot be decoded onto
// the curve.
var ErrInvalidPoint = errors.New("secp256k1: invalid point encoding")

// ParsePoint decodes a 33-byte compressed or 65-byte uncompressed point.
func ParsePoint(data []byte) (Point, error) {
	switch {
	case len(data) == 33 && (data[0] == 0x02 || data[0] == 0x03):
		x := new(big.Int).SetBytes(data[1:])
		if x.Cmp(curveP) >= 0 {
			return Point{}, ErrInvalidPoint
		}
		y, err := liftX(x, data[0] == 0x03)
		if err != nil {
			return Point{}, err
		}
		return Point{X: x, Y: y}, nil
	case len(data) == 65 && data[0] == 0x04:
		x := new(big.Int).SetBytes(data[1:33])
		y := new(big.Int).SetBytes(data[33:])
		pt := Point{X: x, Y: y}
		if !pt.OnCurve() || pt.Infinity() {
			return Point{}, ErrInvalidPoint
		}
		return pt, nil
	default:
		return Point{}, fmt.Errorf("%w: length %d", ErrInvalidPoint, len(data))
	}
}

// liftX computes y with the requested parity such that (x, y) is on the curve.
func liftX(x *big.Int, odd bool) (*big.Int, error) {
	// y^2 = x^3 + 7 mod p; p ≡ 3 (mod 4) so sqrt(v) = v^((p+1)/4).
	y2 := new(big.Int).Mul(x, x)
	y2.Mod(y2, curveP)
	y2.Mul(y2, x)
	y2.Add(y2, curveB)
	y2.Mod(y2, curveP)
	exp := new(big.Int).Add(curveP, big.NewInt(1))
	exp.Rsh(exp, 2)
	y := new(big.Int).Exp(y2, exp, curveP)
	check := new(big.Int).Mul(y, y)
	check.Mod(check, curveP)
	if check.Cmp(y2) != 0 {
		return nil, ErrInvalidPoint
	}
	if (y.Bit(0) == 1) != odd {
		y.Sub(curveP, y)
	}
	return y, nil
}

// constantTimeEq compares two byte slices without early exit. Used only in
// tests and verification helpers; documented here to make the intent clear.
func constantTimeEq(a, b []byte) bool {
	return len(a) == len(b) && subtle.ConstantTimeCompare(a, b) == 1
}
