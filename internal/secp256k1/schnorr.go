package secp256k1

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"math/big"
)

// This file implements BIP340-style Schnorr signatures: x-only public keys,
// tagged hashes, and 64-byte (R.x || s) signatures. The IC exposes threshold
// Schnorr alongside threshold ECDSA; this is the single-signer reference the
// threshold protocol must agree with.

// taggedHash computes SHA256(SHA256(tag) || SHA256(tag) || msg) per BIP340.
func taggedHash(tag string, parts ...[]byte) [32]byte {
	th := sha256.Sum256([]byte(tag))
	h := sha256.New()
	h.Write(th[:])
	h.Write(th[:])
	for _, p := range parts {
		h.Write(p)
	}
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}

// SchnorrSignature is a BIP340 signature: the x coordinate of the nonce point
// and the scalar s.
type SchnorrSignature struct {
	RX *big.Int
	S  *big.Int
}

// Serialize returns the 64-byte BIP340 encoding.
func (s *SchnorrSignature) Serialize() []byte {
	out := make([]byte, 64)
	s.RX.FillBytes(out[:32])
	s.S.FillBytes(out[32:])
	return out
}

// ParseSchnorrSignature decodes a 64-byte BIP340 signature.
func ParseSchnorrSignature(data []byte) (*SchnorrSignature, error) {
	if len(data) != 64 {
		return nil, fmt.Errorf("secp256k1: schnorr signature must be 64 bytes, got %d", len(data))
	}
	return &SchnorrSignature{
		RX: new(big.Int).SetBytes(data[:32]),
		S:  new(big.Int).SetBytes(data[32:]),
	}, nil
}

// XOnlyPubKey returns the 32-byte x-only encoding of the public key.
func (p *PublicKey) XOnlyPubKey() []byte {
	out := make([]byte, 32)
	if !p.Infinity() {
		p.X.FillBytes(out)
	}
	return out
}

// evenKey returns a private scalar whose public point has even Y, negating d
// if necessary (BIP340 key preparation).
func evenKey(d *big.Int) (*big.Int, Point) {
	pt := ScalarBaseMult(d)
	if pt.Y.Bit(0) == 1 {
		d = new(big.Int).Sub(curveN, d)
		pt = ScalarBaseMult(d)
	}
	return d, pt
}

// SchnorrSign produces a deterministic BIP340-style signature over a 32-byte
// message. The aux randomness is derived from the key and message, making
// signing deterministic (sufficient for the simulation; BIP340 permits this).
func (k *PrivateKey) SchnorrSign(msg []byte) (*SchnorrSignature, error) {
	if len(msg) != 32 {
		return nil, fmt.Errorf("secp256k1: schnorr message must be 32 bytes, got %d", len(msg))
	}
	d, pub := evenKey(k.D)
	dBytes := make([]byte, 32)
	d.FillBytes(dBytes)
	pubX := make([]byte, 32)
	pub.X.FillBytes(pubX)

	nonceHash := taggedHash("BIP0340/nonce", dBytes, pubX, msg)
	kNonce := new(big.Int).SetBytes(nonceHash[:])
	kNonce.Mod(kNonce, curveN)
	if kNonce.Sign() == 0 {
		return nil, errors.New("secp256k1: schnorr nonce is zero")
	}
	kNonce, rPt := evenKey(kNonce)
	rx := make([]byte, 32)
	rPt.X.FillBytes(rx)

	e := schnorrChallenge(rPt.X, pub.X, msg)
	s := new(big.Int).Mul(e, d)
	s.Add(s, kNonce)
	s.Mod(s, curveN)
	return &SchnorrSignature{RX: new(big.Int).Set(rPt.X), S: s}, nil
}

// SchnorrChallenge computes the BIP340 challenge e = H_tag(R.x || P.x || m)
// mod n. It is exported because the threshold Schnorr protocol must compute
// the identical challenge when assembling signature shares.
func SchnorrChallenge(rx, px *big.Int, msg []byte) *big.Int {
	return schnorrChallenge(rx, px, msg)
}

// schnorrChallenge computes e = H_tag(R.x || P.x || m) mod n.
func schnorrChallenge(rx, px *big.Int, msg []byte) *big.Int {
	rb := make([]byte, 32)
	rx.FillBytes(rb)
	pb := make([]byte, 32)
	px.FillBytes(pb)
	ch := taggedHash("BIP0340/challenge", rb, pb, msg)
	e := new(big.Int).SetBytes(ch[:])
	return e.Mod(e, curveN)
}

// SchnorrVerify reports whether sig is a valid BIP340 signature on msg under
// the x-only public key px.
func SchnorrVerify(sig *SchnorrSignature, msg []byte, px *big.Int) bool {
	if sig == nil || len(msg) != 32 {
		return false
	}
	if sig.RX.Sign() < 0 || sig.RX.Cmp(curveP) >= 0 {
		return false
	}
	if sig.S.Sign() < 0 || sig.S.Cmp(curveN) >= 0 {
		return false
	}
	py, err := liftX(new(big.Int).Set(px), false)
	if err != nil {
		return false
	}
	pub := Point{X: new(big.Int).Set(px), Y: py}
	e := schnorrChallenge(sig.RX, px, msg)
	// R = s*G - e*P
	sg := ScalarBaseMult(sig.S)
	ep := ScalarMult(pub, e).Neg()
	r := Add(sg, ep)
	if r.Infinity() || r.Y.Bit(0) == 1 {
		return false
	}
	return r.X.Cmp(sig.RX) == 0
}
