// Package core wires the full architecture of the paper together (Figures
// 1 and 4): a simulated Bitcoin network, an IC subnet of 3f+1 replicas each
// running a Bitcoin adapter, and the Bitcoin canister consuming adapter
// responses through consensus payloads. It is the public API a downstream
// application uses:
//
//	integ, _ := core.New(core.Options{})
//	integ.Start()
//	integ.MineBlocks(10)
//	bal, res, _ := integ.GetBalance(addr, 0, false)
//
// Everything runs on virtual time (a deterministic discrete-event
// scheduler), so seconds of simulated latency cost microseconds of wall
// clock and every run is reproducible from its seed.
package core

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"icbtc/internal/adapter"
	"icbtc/internal/btc"
	"icbtc/internal/btcnode"
	"icbtc/internal/canister"
	"icbtc/internal/ic"
	"icbtc/internal/secp256k1"
	"icbtc/internal/simnet"
	"icbtc/internal/utxo"
)

// BitcoinCanisterID is the well-known ID of the Bitcoin canister.
const BitcoinCanisterID ic.CanisterID = "bitcoin"

// Options configures an Integration. Zero values select the defaults noted
// on each field.
type Options struct {
	// Network is the Bitcoin network flavor (default Regtest).
	Network btc.Network
	// BitcoinNodes is the number of honest Bitcoin nodes (default 8).
	BitcoinNodes int
	// AdversarialBitcoinNodes adds attacker-controlled Bitcoin nodes.
	AdversarialBitcoinNodes int
	// Subnet overrides the IC subnet configuration (default
	// ic.DefaultConfig with threshold keys enabled).
	Subnet *ic.Config
	// Adapter overrides the adapter configuration (default per network,
	// with discovery thresholds suitable for the simulated population).
	Adapter *adapter.Config
	// Canister overrides the Bitcoin canister configuration.
	Canister *canister.Config
	// Seed drives all randomness (default 1).
	Seed int64
	// MinerSeed derives the miner's payout key (default Seed+1000).
	MinerSeed int64
}

// Integration is a fully wired instance of the architecture.
type Integration struct {
	Sched    *simnet.Scheduler
	Net      *simnet.Network
	Params   *btc.Params
	Bitcoin  *btcnode.SimNetwork
	Subnet   *ic.Subnet
	Adapters []*adapter.Adapter
	Canister *canister.BitcoinCanister

	miner    *btcnode.Miner
	minerKey *secp256k1.PrivateKey
	started  bool
}

// New builds an Integration per the options. Call Start to begin consensus
// and adapter syncing.
func New(opts Options) (*Integration, error) {
	if opts.Network == 0 {
		opts.Network = btc.Regtest
	}
	if opts.BitcoinNodes == 0 {
		opts.BitcoinNodes = 8
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	if opts.MinerSeed == 0 {
		opts.MinerSeed = opts.Seed + 1000
	}

	sched := simnet.NewScheduler(opts.Seed)
	net := simnet.NewNetwork(sched)
	params := btc.ParamsForNetwork(opts.Network)

	sim := btcnode.BuildHonestNetwork(net, params, opts.BitcoinNodes)
	if opts.AdversarialBitcoinNodes > 0 {
		sim.AddAdversaries(opts.AdversarialBitcoinNodes)
	}

	subnetCfg := ic.DefaultConfig()
	if opts.Subnet != nil {
		subnetCfg = *opts.Subnet
	}
	subnetCfg.Seed = opts.Seed
	subnet, err := ic.NewSubnet(sched, subnetCfg)
	if err != nil {
		return nil, fmt.Errorf("core: building subnet: %w", err)
	}

	canCfg := canister.DefaultConfig(opts.Network)
	if opts.Canister != nil {
		canCfg = *opts.Canister
	}
	btcCan := canister.New(canCfg)
	subnet.InstallCanister(BitcoinCanisterID, btcCan)

	adCfg := adapter.ConfigForNetwork(opts.Network)
	if opts.Adapter != nil {
		adCfg = *opts.Adapter
	} else {
		// The simulated population is far smaller than mainnet's; scale the
		// discovery thresholds so every adapter can fill its address book.
		adCfg.AddrLowWater = 1
		adCfg.AddrHighWater = opts.BitcoinNodes + opts.AdversarialBitcoinNodes
		if adCfg.Connections > opts.BitcoinNodes {
			adCfg.Connections = opts.BitcoinNodes
		}
	}

	integ := &Integration{
		Sched:    sched,
		Net:      net,
		Params:   params,
		Bitcoin:  sim,
		Subnet:   subnet,
		Canister: btcCan,
	}

	// One adapter per replica, each with its own random peer connections;
	// the replica's payload builder runs Algorithm 1 against the canister's
	// current (deterministic) request. The canister is resolved through the
	// subnet per round — never captured — so an UpgradeCanister swap (which
	// replaces the installed instance) is picked up immediately instead of
	// building payloads against the frozen pre-upgrade state forever.
	for i, replica := range subnet.Replicas() {
		ad := adapter.New(simnet.NodeID(fmt.Sprintf("adapter/%d", i)), net, params, sim.Directory, adCfg)
		integ.Adapters = append(integ.Adapters, ad)
		replica.SetPayloadBuilder(BitcoinCanisterID, ic.PayloadBuilderFunc(func() any {
			can, ok := subnet.Canister(BitcoinCanisterID).(*canister.BitcoinCanister)
			if !ok {
				return nil
			}
			resp := ad.HandleRequest(can.CurrentRequest())
			if len(resp.Blocks) == 0 && len(resp.Next) == 0 && can.PendingTransactions() == 0 {
				return nil
			}
			return resp
		}))
	}

	key, err := secp256k1.GeneratePrivateKey(rand.New(rand.NewSource(opts.MinerSeed)))
	if err != nil {
		return nil, fmt.Errorf("core: miner key: %w", err)
	}
	integ.minerKey = key
	if len(sim.Nodes) > 0 {
		integ.miner = btcnode.NewMinerWithKey(sim.Nodes[0], key)
	}
	return integ, nil
}

// Start launches the subnet round loop and all adapters.
func (in *Integration) Start() {
	if in.started {
		return
	}
	in.started = true
	in.Subnet.Start()
	for _, ad := range in.Adapters {
		ad.Start()
	}
}

// RunFor advances virtual time.
func (in *Integration) RunFor(d time.Duration) { in.Sched.RunFor(d) }

// Now returns the current virtual time.
func (in *Integration) Now() time.Time { return in.Sched.Now() }

// MinerAddress returns the address collecting block rewards.
func (in *Integration) MinerAddress() btc.Address {
	return btc.AddressFromPubKey(in.minerKey.PubKey().SerializeCompressed(), in.Params.Network)
}

// MinerKey exposes the miner's key so examples and tests can spend rewards.
func (in *Integration) MinerKey() *secp256k1.PrivateKey { return in.minerKey }

// MineBlocks mines n blocks on the Bitcoin network, letting gossip settle
// between blocks, and returns the new chain height.
func (in *Integration) MineBlocks(n int) (int64, error) {
	if in.miner == nil {
		return 0, errors.New("core: no Bitcoin nodes to mine on")
	}
	for i := 0; i < n; i++ {
		if _, err := in.miner.Mine(0); err != nil {
			return 0, fmt.Errorf("core: mining block %d: %w", i, err)
		}
		in.RunFor(2 * time.Second)
	}
	return in.Bitcoin.Nodes[0].Height(), nil
}

// UpgradeBitcoinCanister performs a canister upgrade round on the running
// integration: the Bitcoin canister is snapshotted, reinstalled from its
// own stable-state bytes, and the new instance takes over under the same
// ID. The payload builders resolve the canister through the subnet each
// round, so the pipeline continues seamlessly; the convenience handle
// (in.Canister) is refreshed here.
func (in *Integration) UpgradeBitcoinCanister() error {
	if err := in.Subnet.UpgradeCanister(BitcoinCanisterID, func(snapshot []byte) (ic.Canister, error) {
		return canister.RestoreSnapshot(snapshot)
	}); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	in.Canister = in.Subnet.Canister(BitcoinCanisterID).(*canister.BitcoinCanister)
	return nil
}

// ErrTimeout is returned by Await helpers when the condition does not hold
// within the budget.
var ErrTimeout = errors.New("core: condition not reached in time")

// AwaitCanisterHeight runs the simulation until the Bitcoin canister holds
// the blocks (not just headers) up to the given height and reports synced,
// or the virtual-time budget elapses.
func (in *Integration) AwaitCanisterHeight(height int64, budget time.Duration) error {
	ok := func() bool {
		return in.Canister.AvailableHeight() >= height && in.Canister.Synced()
	}
	deadline := in.Sched.Now().Add(budget)
	for in.Sched.Now().Before(deadline) {
		if ok() {
			return nil
		}
		in.RunFor(500 * time.Millisecond)
	}
	if ok() {
		return nil
	}
	return fmt.Errorf("%w: canister has blocks to height %d (headers to %d), want %d",
		ErrTimeout, in.Canister.AvailableHeight(), in.Canister.TipHeight(), height)
}

// GetBalance fetches an address balance, replicated (certified, slow) or as
// a query (fast, uncertified). It blocks in virtual time until the response
// arrives and returns the balance plus the full result envelope.
func (in *Integration) GetBalance(address string, minConfirmations int64, replicated bool) (int64, ic.Result, error) {
	args := canister.GetBalanceArgs{Address: address, MinConfirmations: minConfirmations}
	res, err := in.call("get_balance", args, replicated)
	if err != nil {
		return 0, res, err
	}
	bal, ok := res.Value.(int64)
	if !ok {
		return 0, res, fmt.Errorf("core: unexpected balance type %T", res.Value)
	}
	return bal, res, nil
}

// GetUTXOs fetches the UTXOs of an address (optionally filtered/paginated).
func (in *Integration) GetUTXOs(args canister.GetUTXOsArgs, replicated bool) (*canister.GetUTXOsResult, ic.Result, error) {
	res, err := in.call("get_utxos", args, replicated)
	if err != nil {
		return nil, res, err
	}
	out, ok := res.Value.(*canister.GetUTXOsResult)
	if !ok {
		return nil, res, fmt.Errorf("core: unexpected get_utxos type %T", res.Value)
	}
	return out, res, nil
}

// GetAllUTXOs follows pagination to collect every UTXO of an address.
func (in *Integration) GetAllUTXOs(address string, minConfirmations int64) ([]utxo.UTXO, error) {
	var all []utxo.UTXO
	var page utxo.PageToken
	for {
		res, _, err := in.GetUTXOs(canister.GetUTXOsArgs{
			Address:          address,
			MinConfirmations: minConfirmations,
			Page:             page,
		}, false)
		if err != nil {
			return nil, err
		}
		all = append(all, res.UTXOs...)
		if res.NextPage == nil {
			return all, nil
		}
		page = res.NextPage
	}
}

// SendTransaction submits a raw transaction through the Bitcoin canister
// (always replicated — it changes state).
func (in *Integration) SendTransaction(rawTx []byte) (ic.Result, error) {
	res, err := in.call("send_transaction", canister.SendTransactionArgs{RawTx: rawTx}, true)
	return res, err
}

// call performs a replicated or query call against the Bitcoin canister and
// runs the scheduler until the response lands.
func (in *Integration) call(method string, arg any, replicated bool) (ic.Result, error) {
	if !in.started {
		return ic.Result{}, errors.New("core: integration not started")
	}
	var out *ic.Result
	deliver := func(r ic.Result) { out = &r }
	if replicated {
		in.Subnet.SubmitUpdate(BitcoinCanisterID, method, arg, "client", deliver)
	} else {
		in.Subnet.Query(BitcoinCanisterID, method, arg, "client", deliver)
	}
	// Run virtual time forward until the callback fires (bounded).
	deadline := in.Sched.Now().Add(5 * time.Minute)
	for out == nil && in.Sched.Now().Before(deadline) {
		in.RunFor(100 * time.Millisecond)
	}
	if out == nil {
		return ic.Result{}, fmt.Errorf("%w: no response to %s", ErrTimeout, method)
	}
	return *out, out.Err
}

// InstallCanister deploys an application canister next to the Bitcoin
// canister (e.g. a wallet, escrow, or payroll canister).
func (in *Integration) InstallCanister(id ic.CanisterID, c ic.Canister) {
	in.Subnet.InstallCanister(id, c)
}

// CallCanister performs a replicated call against any installed canister.
func (in *Integration) CallCanister(id ic.CanisterID, method string, arg any) (ic.Result, error) {
	if !in.started {
		return ic.Result{}, errors.New("core: integration not started")
	}
	var out *ic.Result
	in.Subnet.SubmitUpdate(id, method, arg, "client", func(r ic.Result) { out = &r })
	deadline := in.Sched.Now().Add(5 * time.Minute)
	for out == nil && in.Sched.Now().Before(deadline) {
		in.RunFor(100 * time.Millisecond)
	}
	if out == nil {
		return ic.Result{}, fmt.Errorf("%w: no response to %s", ErrTimeout, method)
	}
	return *out, out.Err
}

// AwaitTxInMempool runs until the transaction reaches the mining node's
// mempool (node 0), so a subsequent MineBlocks includes it — the complete
// "write path" of the integration.
func (in *Integration) AwaitTxInMempool(txid btc.Hash, budget time.Duration) error {
	deadline := in.Sched.Now().Add(budget)
	for in.Sched.Now().Before(deadline) {
		if len(in.Bitcoin.Nodes) > 0 && in.Bitcoin.Nodes[0].MempoolHas(txid) {
			return nil
		}
		in.RunFor(500 * time.Millisecond)
	}
	return fmt.Errorf("%w: tx %s not in the mining node's mempool", ErrTimeout, txid)
}
