package core

import (
	"errors"
	"testing"
	"time"

	"icbtc/internal/adapter"
	"icbtc/internal/btc"
	"icbtc/internal/canister"
	"icbtc/internal/ic"
)

// fastOptions keeps end-to-end tests quick: a small subnet without the
// degraded-round tail and short consensus delays.
func fastOptions(seed int64) Options {
	cfg := ic.DefaultConfig()
	cfg.N = 4
	cfg.DegradedRoundProb = 0
	cfg.FinalizeBase = 300 * time.Millisecond
	cfg.FinalizeJitter = 200 * time.Millisecond
	cfg.CertifyDelay = 300 * time.Millisecond
	cfg.XNetDelay = 500 * time.Millisecond
	return Options{
		Seed:         seed,
		BitcoinNodes: 5,
		Subnet:       &cfg,
	}
}

// fastOptionsNoKeys additionally disables threshold keys (tests that don't
// sign run much faster without the DKG).
func fastOptionsNoKeys(seed int64) Options {
	o := fastOptions(seed)
	cfg := *o.Subnet
	cfg.DisableThresholdKeys = true
	o.Subnet = &cfg
	return o
}

func TestEndToEndReadPath(t *testing.T) {
	in, err := New(fastOptionsNoKeys(1))
	if err != nil {
		t.Fatal(err)
	}
	in.Start()
	in.RunFor(5 * time.Second) // adapters discover peers

	if _, err := in.MineBlocks(8); err != nil {
		t.Fatal(err)
	}
	if err := in.AwaitCanisterHeight(8, 2*time.Minute); err != nil {
		t.Fatal(err)
	}

	// The miner's balance must be visible through both query and replicated
	// paths, and both must agree.
	addr := in.MinerAddress().String()
	qBal, qRes, err := in.GetBalance(addr, 0, false)
	if err != nil {
		t.Fatalf("query balance: %v", err)
	}
	rBal, rRes, err := in.GetBalance(addr, 0, true)
	if err != nil {
		t.Fatalf("replicated balance: %v", err)
	}
	if qBal != rBal {
		t.Fatalf("query %d != replicated %d", qBal, rBal)
	}
	if want := int64(8) * in.Params.BlockSubsidy; qBal != want {
		t.Fatalf("balance %d, want %d", qBal, want)
	}
	if qRes.Certified || !rRes.Certified {
		t.Fatal("certification flags wrong")
	}
	if qRes.Latency >= rRes.Latency {
		t.Fatalf("query latency %v not below replicated %v", qRes.Latency, rRes.Latency)
	}

	// UTXO retrieval with pagination.
	utxos, err := in.GetAllUTXOs(addr, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(utxos) != 8 {
		t.Fatalf("utxos %d", len(utxos))
	}
}

func TestEndToEndAnchorAdvances(t *testing.T) {
	in, err := New(fastOptionsNoKeys(2))
	if err != nil {
		t.Fatal(err)
	}
	in.Start()
	in.RunFor(5 * time.Second)
	// δ = 6 on regtest: after 10 blocks the anchor sits at height 4... 10-6=4? depth(h5)=6 → anchor 5.
	if _, err := in.MineBlocks(10); err != nil {
		t.Fatal(err)
	}
	if err := in.AwaitCanisterHeight(10, 3*time.Minute); err != nil {
		t.Fatal(err)
	}
	if got := in.Canister.AnchorHeight(); got != 5 {
		// The anchor advances when the last block (not just header) lands;
		// give the pipeline a moment more before failing.
		in.RunFor(30 * time.Second)
	}
	if got := in.Canister.AnchorHeight(); got != 5 {
		t.Fatalf("anchor %d, want 5", got)
	}
	if got := in.Canister.StableUTXOCount(); got != 5 {
		t.Fatalf("stable UTXOs %d", got)
	}
}

func TestEndToEndWritePath(t *testing.T) {
	// The full write loop: client sends a raw transaction through the
	// Bitcoin canister; adapters advertise it; a Bitcoin node mempool picks
	// it up; the miner includes it; the balance change becomes visible.
	in, err := New(fastOptionsNoKeys(3))
	if err != nil {
		t.Fatal(err)
	}
	in.Start()
	in.RunFor(5 * time.Second)
	if _, err := in.MineBlocks(2); err != nil {
		t.Fatal(err)
	}
	if err := in.AwaitCanisterHeight(2, 2*time.Minute); err != nil {
		t.Fatal(err)
	}

	// Build a spend of the miner's first coinbase to a fresh address.
	dest := btc.NewP2PKHAddress([20]byte{0xAB}, in.Params.Network)
	node := in.Bitcoin.Nodes[0]
	utxos := node.UTXOView().UTXOsForAddress(in.MinerAddress().String())
	tx := &btc.Transaction{
		Version: 2,
		Inputs:  []btc.TxIn{{PreviousOutPoint: utxos[0].OutPoint, Sequence: 0xffffffff}},
		Outputs: []btc.TxOut{{Value: utxos[0].Value - 1000, PkScript: btc.PayToAddrScript(dest)}},
	}
	if err := btc.SignInput(tx, 0, utxos[0].PkScript, in.MinerKey()); err != nil {
		t.Fatal(err)
	}

	if _, err := in.SendTransaction(tx.Bytes()); err != nil {
		t.Fatalf("send_transaction: %v", err)
	}
	if err := in.AwaitTxInMempool(tx.TxID(), 2*time.Minute); err != nil {
		t.Fatal(err)
	}
	// Mine it in and confirm the destination balance through the canister.
	if _, err := in.MineBlocks(1); err != nil {
		t.Fatal(err)
	}
	if err := in.AwaitCanisterHeight(3, 2*time.Minute); err != nil {
		t.Fatal(err)
	}
	bal, _, err := in.GetBalance(dest.String(), 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if want := utxos[0].Value - 1000; bal != want {
		t.Fatalf("dest balance %d, want %d", bal, want)
	}
}

func TestEndToEndThresholdWallet(t *testing.T) {
	// The headline capability: a canister holds bitcoin under the subnet
	// threshold key and spends it with threshold signatures.
	in, err := New(fastOptions(4))
	if err != nil {
		t.Fatal(err)
	}
	wallet := &WalletCanister{BitcoinID: BitcoinCanisterID, Network: in.Params.Network}
	in.InstallCanister("wallet", wallet)
	in.Start()
	in.RunFor(5 * time.Second)

	// Give the miner funds, then fund the wallet address.
	if _, err := in.MineBlocks(2); err != nil {
		t.Fatal(err)
	}
	walletAddr, err := WalletAddress(in, in.Params.Network)
	if err != nil {
		t.Fatal(err)
	}
	const fund = 30_000_000 // 0.3 BTC
	if _, err := FundAddress(in, walletAddr.String(), fund); err != nil {
		t.Fatal(err)
	}
	if err := in.AwaitCanisterHeight(3, 2*time.Minute); err != nil {
		t.Fatal(err)
	}

	// The wallet sees its balance via the Bitcoin canister.
	res, err := in.CallCanister("wallet", "balance", nil)
	if err != nil {
		t.Fatalf("wallet balance: %v", err)
	}
	if res.Value.(int64) != fund {
		t.Fatalf("wallet balance %v, want %d", res.Value, fund)
	}

	// Spend: threshold-sign a payment to a fresh address.
	dest := btc.NewP2PKHAddress([20]byte{0xCD}, in.Params.Network)
	res, err = in.CallCanister("wallet", "send", SendArgs{To: dest.String(), Amount: 10_000_000})
	if err != nil {
		t.Fatalf("wallet send: %v", err)
	}
	sent := res.Value.(*SendResult)
	if err := in.AwaitTxInMempool(sent.TxID, 2*time.Minute); err != nil {
		t.Fatal(err)
	}
	if _, err := in.MineBlocks(1); err != nil {
		t.Fatal(err)
	}
	if err := in.AwaitCanisterHeight(4, 2*time.Minute); err != nil {
		t.Fatal(err)
	}
	bal, _, err := in.GetBalance(dest.String(), 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if bal != 10_000_000 {
		t.Fatalf("dest balance %d", bal)
	}
	// Change came back to the wallet.
	res, err = in.CallCanister("wallet", "balance", nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Value.(int64); got != fund-10_000_000-1000 {
		t.Fatalf("wallet change balance %d", got)
	}
}

func TestWalletErrors(t *testing.T) {
	in, err := New(fastOptions(5))
	if err != nil {
		t.Fatal(err)
	}
	wallet := &WalletCanister{BitcoinID: BitcoinCanisterID, Network: in.Params.Network}
	in.InstallCanister("wallet", wallet)
	in.Start()
	in.RunFor(5 * time.Second)
	if _, err := in.MineBlocks(1); err != nil {
		t.Fatal(err)
	}
	if err := in.AwaitCanisterHeight(1, 2*time.Minute); err != nil {
		t.Fatal(err)
	}

	// Insufficient funds.
	dest := btc.NewP2PKHAddress([20]byte{1}, in.Params.Network)
	if _, err := in.CallCanister("wallet", "send", SendArgs{To: dest.String(), Amount: 1}); err == nil {
		t.Fatal("send with empty wallet succeeded")
	}
	// Bad destination.
	if _, err := in.CallCanister("wallet", "send", SendArgs{To: "garbage", Amount: 1}); err == nil {
		t.Fatal("bad destination accepted")
	}
	// Non-positive amount.
	if _, err := in.CallCanister("wallet", "send", SendArgs{To: dest.String(), Amount: 0}); err == nil {
		t.Fatal("zero amount accepted")
	}
	// Bad method / bad arg type.
	if _, err := in.CallCanister("wallet", "nope", nil); err == nil {
		t.Fatal("unknown method accepted")
	}
	if _, err := in.CallCanister("wallet", "send", 42); err == nil {
		t.Fatal("bad arg type accepted")
	}
}

func TestReorgHandledEndToEnd(t *testing.T) {
	// A fork at unstable heights must be resolved automatically by the
	// canister ("the Bitcoin canister can cope with any block
	// reorganization at heights greater than h(β*) automatically").
	in, err := New(fastOptionsNoKeys(6))
	if err != nil {
		t.Fatal(err)
	}
	in.Start()
	in.RunFor(5 * time.Second)
	if _, err := in.MineBlocks(3); err != nil {
		t.Fatal(err)
	}
	if err := in.AwaitCanisterHeight(3, 2*time.Minute); err != nil {
		t.Fatal(err)
	}

	// Competing heavier branch from height 1, built off-network and then
	// gossiped in.
	adv := in.Bitcoin
	adv.AddAdversaries(1)
	a := adv.Adversaries[0]
	// Sync the adversary with the honest chain.
	for _, n := range in.Bitcoin.Nodes[0].Tree().CurrentChain()[1:] {
		blk, _ := in.Bitcoin.Nodes[0].GetBlock(n.Hash)
		if _, err := a.Node.AcceptBlock(blk); err != nil {
			t.Fatal(err)
		}
	}
	base := a.Node.Tree().AtHeight(1)[0].Hash
	if err := a.MinePrivateFork(base, 4, nil); err != nil { // fork to height 5
		t.Fatal(err)
	}
	// Release the fork to the honest network.
	for _, blk := range a.Fork() {
		for _, n := range in.Bitcoin.Nodes {
			if _, err := n.AcceptBlock(blk); err != nil {
				t.Fatalf("fork block rejected by honest node: %v", err)
			}
		}
	}
	in.RunFor(30 * time.Second)
	if err := in.AwaitCanisterHeight(5, 3*time.Minute); err != nil {
		t.Fatal(err)
	}
	// The canister followed the reorg: the old tip blocks at heights 2,3
	// are off the current chain, so the miner's coinbases there are hidden.
	bal, _, err := in.GetBalance(in.MinerAddress().String(), 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(1) * in.Params.BlockSubsidy; bal != want {
		t.Fatalf("post-reorg balance %d, want %d (only height-1 coinbase)", bal, want)
	}
}

func TestQueryVsReplicatedLatencyShape(t *testing.T) {
	// §IV-B: queries answer in hundreds of milliseconds, replicated calls
	// in ~7-18 seconds (here scaled down by fastOptions, but the ordering
	// and magnitude gap must hold).
	in, err := New(fastOptionsNoKeys(7))
	if err != nil {
		t.Fatal(err)
	}
	in.Start()
	in.RunFor(5 * time.Second)
	if _, err := in.MineBlocks(2); err != nil {
		t.Fatal(err)
	}
	if err := in.AwaitCanisterHeight(2, 2*time.Minute); err != nil {
		t.Fatal(err)
	}
	addr := in.MinerAddress().String()
	_, qRes, err := in.GetBalance(addr, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	_, rRes, err := in.GetBalance(addr, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	if qRes.Latency > time.Second {
		t.Fatalf("query latency %v too high", qRes.Latency)
	}
	if rRes.Latency < 2*qRes.Latency {
		t.Fatalf("replicated %v not well above query %v", rRes.Latency, qRes.Latency)
	}
}

func TestNotStartedErrors(t *testing.T) {
	in, err := New(fastOptionsNoKeys(8))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := in.GetBalance("x", 0, false); err == nil {
		t.Fatal("call before Start accepted")
	}
	if _, err := in.CallCanister("wallet", "x", nil); err == nil {
		t.Fatal("CallCanister before Start accepted")
	}
}

func TestTooManyConfirmationsSurfaced(t *testing.T) {
	in, err := New(fastOptionsNoKeys(9))
	if err != nil {
		t.Fatal(err)
	}
	in.Start()
	in.RunFor(5 * time.Second)
	if _, err := in.MineBlocks(1); err != nil {
		t.Fatal(err)
	}
	if err := in.AwaitCanisterHeight(1, time.Minute); err != nil {
		t.Fatal(err)
	}
	_, _, err = in.GetBalance(in.MinerAddress().String(), 999, false)
	if err == nil || !errors.Is(err, canister.ErrTooManyConfirmations) {
		t.Fatalf("want ErrTooManyConfirmations, got %v", err)
	}
}

// Interface check: the integration must accept custom adapter configs.
func TestCustomAdapterConfig(t *testing.T) {
	cfg := adapter.ConfigForNetwork(btc.Regtest)
	cfg.Connections = 2
	cfg.AddrLowWater, cfg.AddrHighWater = 1, 10
	opts := fastOptionsNoKeys(10)
	opts.Adapter = &cfg
	in, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	in.Start()
	in.RunFor(10 * time.Second)
	for _, ad := range in.Adapters {
		if got := len(ad.ConnectedPeers()); got != 2 {
			t.Fatalf("adapter has %d peers, want 2", got)
		}
	}
}

func TestWalletMultiInputSpend(t *testing.T) {
	// A payment larger than any single UTXO forces multi-input coin
	// selection and one threshold signature per input.
	in, err := New(fastOptions(11))
	if err != nil {
		t.Fatal(err)
	}
	wallet := &WalletCanister{BitcoinID: BitcoinCanisterID, Network: in.Params.Network}
	in.InstallCanister("wallet", wallet)
	in.Start()
	in.RunFor(5 * time.Second)
	if _, err := in.MineBlocks(3); err != nil {
		t.Fatal(err)
	}
	walletAddr, err := WalletAddress(in, in.Params.Network)
	if err != nil {
		t.Fatal(err)
	}
	// Two separate fundings → two UTXOs of 0.05 BTC each.
	for i := 0; i < 2; i++ {
		if _, err := FundAddress(in, walletAddr.String(), 5_000_000); err != nil {
			t.Fatal(err)
		}
	}
	if err := in.AwaitCanisterHeight(5, 3*time.Minute); err != nil {
		t.Fatal(err)
	}
	dest := btc.NewP2PKHAddress([20]byte{0xEF}, in.Params.Network)
	// 0.08 BTC needs both UTXOs.
	res, err := in.CallCanister("wallet", "send", SendArgs{To: dest.String(), Amount: 8_000_000})
	if err != nil {
		t.Fatalf("multi-input send: %v", err)
	}
	sent := res.Value.(*SendResult)
	parsed, err := btc.ParseTransaction(sent.RawTx)
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed.Inputs) != 2 {
		t.Fatalf("spend used %d inputs, want 2", len(parsed.Inputs))
	}
	if err := in.AwaitTxInMempool(sent.TxID, 2*time.Minute); err != nil {
		t.Fatal(err)
	}
	if _, err := in.MineBlocks(1); err != nil {
		t.Fatal(err)
	}
	if err := in.AwaitCanisterHeight(6, 2*time.Minute); err != nil {
		t.Fatal(err)
	}
	bal, _, err := in.GetBalance(dest.String(), 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if bal != 8_000_000 {
		t.Fatalf("dest got %d", bal)
	}
}
