package core

import (
	"errors"
	"fmt"

	"icbtc/internal/btc"
	"icbtc/internal/canister"
	"icbtc/internal/ic"
	"icbtc/internal/utxo"
)

// WalletCanister is an application canister that holds bitcoin natively
// under the subnet's threshold-ECDSA key — the capability that headlines
// the paper ("Canisters can hold bitcoins natively and let node machines
// sign Bitcoin transactions on their behalf", Fig 1).
//
// The wallet derives its Bitcoin address from the subnet public key, reads
// its UTXOs through the Bitcoin canister, builds standard P2PKH spends,
// signs every input via threshold ECDSA (no single node ever sees a private
// key — there isn't one), and submits the result through send_transaction.
type WalletCanister struct {
	// BitcoinID is the Bitcoin canister to talk to.
	BitcoinID ic.CanisterID
	// Network selects the address flavor.
	Network btc.Network
	// FeeSatoshi is the flat fee attached to sends.
	FeeSatoshi int64

	// sent counts successful sends (for tests/metrics).
	sent int
}

// SendArgs instructs the wallet to transfer value.
type SendArgs struct {
	To     string
	Amount int64
}

// SendResult reports the submitted transaction.
type SendResult struct {
	TxID   btc.Hash
	RawTx  []byte
	Change int64
}

// Update implements ic.Canister.
func (w *WalletCanister) Update(ctx *ic.CallContext, method string, arg any) (any, error) {
	switch method {
	case "address":
		return w.address(ctx)
	case "balance":
		return w.balance(ctx)
	case "send":
		args, ok := arg.(SendArgs)
		if !ok {
			return nil, fmt.Errorf("wallet: send wants SendArgs, got %T", arg)
		}
		return w.send(ctx, args)
	case "sent_count":
		return w.sent, nil
	default:
		return nil, fmt.Errorf("wallet: no update method %q", method)
	}
}

// Query implements ic.Canister. Only address derivation is queryable; reads
// of Bitcoin state go through the Bitcoin canister which enforces its own
// rules.
func (w *WalletCanister) Query(ctx *ic.CallContext, method string, arg any) (any, error) {
	switch method {
	case "address":
		return w.address(ctx)
	case "balance":
		return w.balance(ctx)
	case "sent_count":
		return w.sent, nil
	default:
		return nil, fmt.Errorf("wallet: no query method %q", method)
	}
}

// address derives the wallet's P2PKH address from the subnet key.
func (w *WalletCanister) address(ctx *ic.CallContext) (string, error) {
	pub := ctx.ECDSAPublicKey()
	if pub == nil {
		return "", errors.New("wallet: subnet has no threshold key")
	}
	return btc.AddressFromPubKey(pub, w.Network).String(), nil
}

// balance reads the wallet's balance via the Bitcoin canister.
func (w *WalletCanister) balance(ctx *ic.CallContext) (int64, error) {
	addr, err := w.address(ctx)
	if err != nil {
		return 0, err
	}
	v, err := ctx.Call(w.BitcoinID, "get_balance", canister.GetBalanceArgs{Address: addr})
	if err != nil {
		return 0, err
	}
	return v.(int64), nil
}

// send builds, threshold-signs, and submits a payment.
func (w *WalletCanister) send(ctx *ic.CallContext, args SendArgs) (*SendResult, error) {
	if args.Amount <= 0 {
		return nil, fmt.Errorf("wallet: amount must be positive, got %d", args.Amount)
	}
	dest, err := btc.ParseAddress(args.To, w.Network)
	if err != nil {
		return nil, fmt.Errorf("wallet: bad destination: %w", err)
	}
	ownAddr, err := w.address(ctx)
	if err != nil {
		return nil, err
	}
	fee := w.FeeSatoshi
	if fee <= 0 {
		fee = 1000
	}

	// 1. Collect spendable UTXOs through the Bitcoin canister.
	var coins []utxo.UTXO
	var page utxo.PageToken
	for {
		v, err := ctx.Call(w.BitcoinID, "get_utxos", canister.GetUTXOsArgs{Address: ownAddr, Page: page})
		if err != nil {
			return nil, fmt.Errorf("wallet: get_utxos: %w", err)
		}
		res := v.(*canister.GetUTXOsResult)
		coins = append(coins, res.UTXOs...)
		if res.NextPage == nil {
			break
		}
		page = res.NextPage
	}

	// 2. Coin selection: greedy accumulation in canonical order.
	need := args.Amount + fee
	var selected []utxo.UTXO
	var total int64
	for _, c := range coins {
		selected = append(selected, c)
		total += c.Value
		if total >= need {
			break
		}
	}
	if total < need {
		return nil, fmt.Errorf("wallet: insufficient funds: have %d, need %d", total, need)
	}

	// 3. Build the transaction: payment output plus change back to self.
	tx := &btc.Transaction{Version: 2}
	for _, c := range selected {
		tx.Inputs = append(tx.Inputs, btc.TxIn{PreviousOutPoint: c.OutPoint, Sequence: 0xffffffff})
	}
	tx.Outputs = append(tx.Outputs, btc.TxOut{Value: args.Amount, PkScript: btc.PayToAddrScript(dest)})
	change := total - need
	if change > 0 {
		self, err := btc.ParseAddress(ownAddr, w.Network)
		if err != nil {
			return nil, err
		}
		tx.Outputs = append(tx.Outputs, btc.TxOut{Value: change, PkScript: btc.PayToAddrScript(self)})
	}

	// 4. Threshold-sign every input under the subnet key.
	pub := ctx.ECDSAPublicKey()
	for i := range tx.Inputs {
		digest, err := btc.SignatureHash(tx, i, selected[i].PkScript)
		if err != nil {
			return nil, err
		}
		der, err := ctx.SignWithECDSA(digest[:])
		if err != nil {
			return nil, fmt.Errorf("wallet: threshold signing input %d: %w", i, err)
		}
		tx.Inputs[i].SignatureScript = btc.BuildP2PKHUnlockScript(der, pub)
	}

	// 5. Verify locally (the Bitcoin network will too) and submit.
	for i := range tx.Inputs {
		if err := btc.VerifyInput(tx, i, selected[i].PkScript); err != nil {
			return nil, fmt.Errorf("wallet: built invalid spend: %w", err)
		}
	}
	raw := tx.Bytes()
	if _, err := ctx.Call(w.BitcoinID, "send_transaction", canister.SendTransactionArgs{RawTx: raw}); err != nil {
		return nil, fmt.Errorf("wallet: send_transaction: %w", err)
	}
	w.sent++
	return &SendResult{TxID: tx.TxID(), RawTx: raw, Change: change}, nil
}

// Verify interface compliance.
var _ ic.Canister = (*WalletCanister)(nil)

// WalletAddress derives the wallet address outside canister context (for
// examples that need to fund the wallet before using it).
func WalletAddress(in *Integration, network btc.Network) (btc.Address, error) {
	committee := in.Subnet.Committee()
	if committee == nil {
		return btc.Address{}, errors.New("core: subnet has no threshold key")
	}
	pub := committee.PublicKey().SerializeCompressed()
	return btc.AddressFromPubKey(pub, network), nil
}

// FundAddress mines a block paying the subsidy to a throwaway key, then
// sends amount from the miner's rewards to the target address and mines it
// in. It is a convenience for examples and tests.
func FundAddress(in *Integration, target string, amount int64) (btc.Hash, error) {
	dest, err := btc.ParseAddress(target, in.Params.Network)
	if err != nil {
		return btc.Hash{}, err
	}
	minerAddr := in.MinerAddress()
	node := in.Bitcoin.Nodes[0]
	utxos := node.UTXOView().UTXOsForAddress(minerAddr.String())
	var sel []utxo.UTXO
	var total int64
	fee := int64(1000)
	for _, u := range utxos {
		sel = append(sel, u)
		total += u.Value
		if total >= amount+fee {
			break
		}
	}
	if total < amount+fee {
		return btc.Hash{}, fmt.Errorf("core: miner has %d, need %d", total, amount+fee)
	}
	tx := &btc.Transaction{Version: 2}
	for _, u := range sel {
		tx.Inputs = append(tx.Inputs, btc.TxIn{PreviousOutPoint: u.OutPoint, Sequence: 0xffffffff})
	}
	tx.Outputs = append(tx.Outputs, btc.TxOut{Value: amount, PkScript: btc.PayToAddrScript(dest)})
	if change := total - amount - fee; change > 0 {
		tx.Outputs = append(tx.Outputs, btc.TxOut{Value: change, PkScript: btc.PayToAddrScript(minerAddr)})
	}
	for i := range tx.Inputs {
		if err := btc.SignInput(tx, i, sel[i].PkScript, in.MinerKey()); err != nil {
			return btc.Hash{}, err
		}
	}
	if !node.AcceptTx(tx) {
		return btc.Hash{}, errors.New("core: funding tx rejected")
	}
	if _, err := in.MineBlocks(1); err != nil {
		return btc.Hash{}, err
	}
	return tx.TxID(), nil
}
