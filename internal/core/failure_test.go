package core

import (
	"testing"
	"time"

	"icbtc/internal/simnet"
)

// Failure-injection tests: the integration must stay safe (never serve
// wrong data) and recover liveness when the fault clears.

func TestSurvivesMessageLoss(t *testing.T) {
	in, err := New(fastOptionsNoKeys(40))
	if err != nil {
		t.Fatal(err)
	}
	in.Net.SetLossRate(0.15)
	in.Start()
	in.RunFor(10 * time.Second)
	if _, err := in.MineBlocks(6); err != nil {
		t.Fatal(err)
	}
	// Retransmissions come from the periodic sync loops; allow extra time.
	if err := in.AwaitCanisterHeight(6, 10*time.Minute); err != nil {
		t.Fatalf("did not recover under 15%% loss: %v", err)
	}
	bal, _, err := in.GetBalance(in.MinerAddress().String(), 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if bal != 6*in.Params.BlockSubsidy {
		t.Fatalf("balance %d under loss", bal)
	}
}

func TestAdapterPartitionHeals(t *testing.T) {
	in, err := New(fastOptionsNoKeys(41))
	if err != nil {
		t.Fatal(err)
	}
	in.Start()
	in.RunFor(5 * time.Second)
	if _, err := in.MineBlocks(2); err != nil {
		t.Fatal(err)
	}
	if err := in.AwaitCanisterHeight(2, 2*time.Minute); err != nil {
		t.Fatal(err)
	}

	// Partition ALL adapters away from the Bitcoin network.
	for _, ad := range in.Adapters {
		in.Net.SetPartition(ad.ID, "ic-island")
	}
	if _, err := in.MineBlocks(3); err != nil {
		t.Fatal(err)
	}
	in.RunFor(30 * time.Second)
	// The canister must not have advanced (no data path), but must still
	// serve its last-known state (lag is in blocks it cannot know about).
	if in.Canister.AvailableHeight() > 2 {
		t.Fatalf("canister advanced to %d during partition", in.Canister.AvailableHeight())
	}

	// Heal: adapters resync and the canister catches up.
	in.Net.HealPartitions()
	if err := in.AwaitCanisterHeight(5, 5*time.Minute); err != nil {
		t.Fatalf("did not catch up after heal: %v", err)
	}
}

func TestCanisterDowntimeRecovery(t *testing.T) {
	// §IV-A's downtime scenario, benign version: the subnet halts, the
	// Bitcoin network keeps growing, the subnet resumes and must not act on
	// stale state until it has caught up (the synced flag), then recover.
	in, err := New(fastOptionsNoKeys(42))
	if err != nil {
		t.Fatal(err)
	}
	in.Start()
	in.RunFor(5 * time.Second)
	if _, err := in.MineBlocks(3); err != nil {
		t.Fatal(err)
	}
	if err := in.AwaitCanisterHeight(3, 2*time.Minute); err != nil {
		t.Fatal(err)
	}

	in.Subnet.SetHalted(true)
	if _, err := in.MineBlocks(5); err != nil { // chain grows to 8 unseen
		t.Fatal(err)
	}
	in.RunFor(20 * time.Second)
	if in.Canister.AvailableHeight() != 3 {
		t.Fatalf("canister moved while halted: %d", in.Canister.AvailableHeight())
	}

	in.Subnet.SetHalted(false)
	if err := in.AwaitCanisterHeight(8, 5*time.Minute); err != nil {
		t.Fatalf("did not recover after downtime: %v", err)
	}
	bal, _, err := in.GetBalance(in.MinerAddress().String(), 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if bal != 8*in.Params.BlockSubsidy {
		t.Fatalf("post-recovery balance %d", bal)
	}
}

func TestCrashedBitcoinNodesTolerated(t *testing.T) {
	// Killing a minority of Bitcoin nodes must not stop the pipeline: the
	// adapters' random connections route around them.
	in, err := New(fastOptionsNoKeys(43))
	if err != nil {
		t.Fatal(err)
	}
	in.Start()
	in.RunFor(5 * time.Second)
	// Crash two non-mining nodes.
	in.Net.SetDown(in.Bitcoin.Nodes[3].ID, true)
	in.Net.SetDown(in.Bitcoin.Nodes[4].ID, true)
	// Adapters with dead peers replace them.
	for _, ad := range in.Adapters {
		for _, p := range ad.ConnectedPeers() {
			if in.Net.IsDown(p) {
				ad.DropConnection(p)
			}
		}
	}
	if _, err := in.MineBlocks(4); err != nil {
		t.Fatal(err)
	}
	if err := in.AwaitCanisterHeight(4, 5*time.Minute); err != nil {
		t.Fatalf("pipeline stalled with crashed Bitcoin nodes: %v", err)
	}
}

func TestDownIcReplicasTolerated(t *testing.T) {
	// f crashed replicas: consensus continues (their block-maker slots are
	// skipped) and the integration stays live.
	in, err := New(fastOptionsNoKeys(44))
	if err != nil {
		t.Fatal(err)
	}
	in.Subnet.Replicas()[0].Down = true // f = 1 for N=4
	in.Start()
	in.RunFor(5 * time.Second)
	if _, err := in.MineBlocks(3); err != nil {
		t.Fatal(err)
	}
	if err := in.AwaitCanisterHeight(3, 3*time.Minute); err != nil {
		t.Fatalf("subnet stalled with a down replica: %v", err)
	}
}

func TestDeterministicReplay(t *testing.T) {
	// Two integrations with the same seed must produce identical canister
	// state after identical operations — the reproducibility property the
	// whole evaluation rests on.
	run := func() (int64, int, simnet.NodeID) {
		in, err := New(fastOptionsNoKeys(45))
		if err != nil {
			t.Fatal(err)
		}
		in.Start()
		in.RunFor(5 * time.Second)
		if _, err := in.MineBlocks(5); err != nil {
			t.Fatal(err)
		}
		if err := in.AwaitCanisterHeight(5, 3*time.Minute); err != nil {
			t.Fatal(err)
		}
		peers := in.Adapters[0].ConnectedPeers()
		var first simnet.NodeID
		if len(peers) > 0 {
			first = peers[0]
		}
		return in.Canister.TipHeight(), in.Canister.StableUTXOCount(), first
	}
	h1, u1, p1 := run()
	h2, u2, p2 := run()
	if h1 != h2 || u1 != u2 {
		t.Fatalf("replay diverged: (%d,%d) vs (%d,%d)", h1, u1, h2, u2)
	}
	_ = p1
	_ = p2 // peer sets are maps; ordering may differ, values compared above
}

func TestCanisterUpgradeMidPipeline(t *testing.T) {
	// The canister-upgrade lifecycle event on the full stack: mid-run the
	// Bitcoin canister is reinstalled from its own snapshot; the payload
	// builders resolve the canister through the subnet per round, so the
	// upgraded instance keeps syncing and serving without a stall.
	in, err := New(fastOptionsNoKeys(44))
	if err != nil {
		t.Fatal(err)
	}
	in.Start()
	in.RunFor(5 * time.Second)
	if _, err := in.MineBlocks(3); err != nil {
		t.Fatal(err)
	}
	if err := in.AwaitCanisterHeight(3, 5*time.Minute); err != nil {
		t.Fatalf("pre-upgrade sync: %v", err)
	}

	old := in.Canister
	if err := in.UpgradeBitcoinCanister(); err != nil {
		t.Fatal(err)
	}
	if in.Canister == old {
		t.Fatal("upgrade did not install a fresh canister instance")
	}
	if in.Canister.AvailableHeight() != 3 {
		t.Fatalf("upgraded canister lost state: height %d", in.Canister.AvailableHeight())
	}

	// The pipeline must keep advancing through the upgraded instance.
	if _, err := in.MineBlocks(3); err != nil {
		t.Fatal(err)
	}
	if err := in.AwaitCanisterHeight(6, 5*time.Minute); err != nil {
		t.Fatalf("post-upgrade sync stalled: %v", err)
	}
	bal, _, err := in.GetBalance(in.MinerAddress().String(), 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if bal != 6*in.Params.BlockSubsidy {
		t.Fatalf("post-upgrade balance %d", bal)
	}
}
