// Package ic implements the Internet Computer replica stack the paper's
// architecture runs on (§II-A): subnets of 3f+1 replicas, a round-based
// consensus simulation with ranked block makers and deterministic
// finalization, a message-routing layer delivering ingress and
// inter-canister calls in consensus order, and an execution layer running
// canisters deterministically with instruction metering.
//
// The consensus protocol is a structural simulation of Internet Computer
// Consensus [Camenisch et al., PODC 2022]: per round a random beacon ranks
// block makers; the rank-0 maker's proposal is notarized and finalized after
// the configured delays; finalized blocks are never rolled back. Byzantine
// replicas can, when selected as block maker, inject arbitrary payloads —
// exactly the capability the Lemma IV.3 analysis grants the attacker.
package ic

import (
	"fmt"
	"time"
)

// CanisterID identifies a canister on a subnet.
type CanisterID string

// CallKind distinguishes replicated (update) from non-replicated (query)
// execution.
type CallKind int

// Call kinds.
const (
	KindUpdate CallKind = iota + 1
	KindQuery
)

// CallContext carries the environment of one canister execution.
type CallContext struct {
	// Meter charges instructions; execution cost and latency derive from it.
	Meter *Meter
	// Time is the deterministic block time of the execution.
	Time time.Time
	// Caller identifies the calling principal (client or canister).
	Caller string
	// Kind reports whether this is an update or a query execution.
	Kind CallKind
	// subnet gives canisters access to subnet services (threshold signing).
	subnet *Subnet
	// ownMeter backs Meter for contexts built by NewCallContext, so a fresh
	// metered context costs a single allocation.
	ownMeter Meter
}

// NewCallContext returns a metered context in one allocation: the meter is
// embedded in the context value rather than allocated separately. Intended
// for hot measurement loops (benchmarks, experiments) that build a fresh
// context per request.
func NewCallContext(kind CallKind, t time.Time) *CallContext {
	ctx := &CallContext{Time: t, Kind: kind}
	ctx.Meter = &ctx.ownMeter
	return ctx
}

// SignWithECDSA asks the subnet's threshold-ECDSA committee to sign a
// 32-byte digest under the subnet key. Only available in update calls, as
// on the real IC. The returned DER signature verifies under ECDSAPublicKey.
func (c *CallContext) SignWithECDSA(digest []byte) ([]byte, error) {
	if c.Kind != KindUpdate {
		return nil, fmt.Errorf("ic: sign_with_ecdsa is not available in queries")
	}
	if c.subnet == nil || c.subnet.committee == nil {
		return nil, fmt.Errorf("ic: subnet has no threshold key")
	}
	c.Meter.Charge(CostThresholdSignature, "sign_with_ecdsa")
	sig, err := c.subnet.committee.Sign(digest)
	if err != nil {
		return nil, fmt.Errorf("ic: threshold signing: %w", err)
	}
	return sig.SerializeDER(), nil
}

// SignWithSchnorr asks the committee for a BIP340 threshold Schnorr
// signature (64 bytes) over a 32-byte message.
func (c *CallContext) SignWithSchnorr(msg []byte) ([]byte, error) {
	if c.Kind != KindUpdate {
		return nil, fmt.Errorf("ic: sign_with_schnorr is not available in queries")
	}
	if c.subnet == nil || c.subnet.committee == nil {
		return nil, fmt.Errorf("ic: subnet has no threshold key")
	}
	c.Meter.Charge(CostThresholdSignature, "sign_with_schnorr")
	sig, err := c.subnet.committee.SignSchnorr(msg)
	if err != nil {
		return nil, fmt.Errorf("ic: threshold schnorr signing: %w", err)
	}
	return sig.Serialize(), nil
}

// ECDSAPublicKey returns the subnet's threshold-ECDSA public key in SEC
// compressed form (the key canisters derive Bitcoin addresses from).
func (c *CallContext) ECDSAPublicKey() []byte {
	if c.subnet == nil || c.subnet.committee == nil {
		return nil
	}
	return c.subnet.committee.PublicKey().SerializeCompressed()
}

// Call performs a same-subnet inter-canister call synchronously within the
// current execution (the simulation collapses the call-response round trip;
// cross-subnet latency is modeled at the subnet boundary instead).
func (c *CallContext) Call(target CanisterID, method string, arg any) (any, error) {
	if c.subnet == nil {
		return nil, fmt.Errorf("ic: no subnet in context")
	}
	can := c.subnet.canisters[target]
	if can == nil {
		return nil, fmt.Errorf("ic: canister %s not found", target)
	}
	c.Meter.Charge(CostInterCanisterCall, "call")
	switch c.Kind {
	case KindUpdate:
		return can.Update(c, method, arg)
	default:
		return can.Query(c, method, arg)
	}
}

// Canister is the unit of logic and state on a subnet. Implementations must
// be deterministic: all inputs arrive through the arguments and context.
type Canister interface {
	// Update handles a replicated call; state changes persist.
	Update(ctx *CallContext, method string, arg any) (any, error)
	// Query handles a non-replicated read-only call on one replica.
	Query(ctx *CallContext, method string, arg any) (any, error)
}

// MethodSpec declares the dispatch paths one method serves on.
type MethodSpec struct {
	// Query marks the method servable on the non-replicated query path.
	Query bool
	// Update marks the method servable on the replicated path.
	Update bool
}

// MethodTable is implemented by canisters that expose a typed method
// registry. The subnet consults it to reject calls on a dispatch path the
// registry does not declare — before any execution resources are spent —
// instead of relying on each canister's dispatch switch to agree with the
// routing layer's expectations.
type MethodTable interface {
	// MethodSpec reports the dispatch spec of a method; ok is false for
	// methods the canister does not export.
	MethodSpec(method string) (MethodSpec, bool)
}

// checkDispatch gates one call against the canister's method registry, when
// it has one. Unknown methods fall through so the canister reports them with
// its own canonical error.
func checkDispatch(can Canister, method string, kind CallKind) error {
	mt, ok := can.(MethodTable)
	if !ok {
		return nil
	}
	spec, ok := mt.MethodSpec(method)
	if !ok {
		return nil
	}
	if kind == KindQuery && !spec.Query {
		return fmt.Errorf("ic: method %q is not servable as a query", method)
	}
	if kind == KindUpdate && !spec.Update {
		return fmt.Errorf("ic: method %q is not servable as an update", method)
	}
	return nil
}

// Snapshotter is implemented by canisters whose complete state can be
// captured as one deterministic byte string (the stable-memory image the
// real IC persists across canister upgrades). Snapshots feed two scenarios:
// an upgrade reinstalls the same canister from its own snapshot
// (Subnet.UpgradeCanister), and fast-sync bootstraps a fresh replica from a
// peer's snapshot instead of replaying the chain.
type Snapshotter interface {
	// Snapshot serializes the canister's full state deterministically:
	// equal states yield equal bytes.
	Snapshot() ([]byte, error)
}

// PayloadProcessor is implemented by canisters that consume consensus
// payloads (the Bitcoin canister consumes Bitcoin adapter responses that
// block makers put into IC blocks).
type PayloadProcessor interface {
	// ProcessPayload handles one payload in a finalized block. Errors are
	// recorded but do not abort the block (mirroring the canister trapping
	// on bad input without halting the subnet).
	ProcessPayload(ctx *CallContext, payload any) error
}

// TimerHandler is implemented by canisters that schedule their own
// execution (§II-A: "canisters can schedule the execution of (parts of)
// their own code using timers"). OnTimer runs once per finalized block.
type TimerHandler interface {
	OnTimer(ctx *CallContext)
}

// PayloadBuilder produces the payload a block maker includes for a given
// canister. Each replica has its own builder (its own Bitcoin adapter), so
// different block makers may deliver different payloads — the degree of
// freedom the §IV-A analysis gives the attacker.
type PayloadBuilder interface {
	BuildPayload() any
}

// PayloadBuilderFunc adapts a function to PayloadBuilder.
type PayloadBuilderFunc func() any

// BuildPayload implements PayloadBuilder.
func (f PayloadBuilderFunc) BuildPayload() any { return f() }
