package ic

import (
	"errors"
	"math/rand"
	"testing"

	"icbtc/internal/tecdsa"
)

// TestResponseDigestMapDeterminism is the regression test for the
// nondeterministic certification digest: hashing fmt's %#v rendering walked
// Go maps in randomized iteration order, so a map-valued result certified
// to a different digest per run. The canonical encoder must digest the same
// map-valued result identically no matter how (or in which order) the map
// was populated.
func TestResponseDigestMapDeterminism(t *testing.T) {
	mk := func(keys []string) map[string]uint64 {
		m := make(map[string]uint64)
		for i, k := range keys {
			m[k] = uint64(i * 11)
		}
		return m
	}
	a := mk([]string{"insert_outputs", "remove_inputs", "fetch_stable", "request_base"})
	b := mk([]string{"request_base", "fetch_stable", "remove_inputs", "insert_outputs"})
	b["insert_outputs"], b["remove_inputs"] = 0, 11
	b["fetch_stable"], b["request_base"] = 22, 33
	a["insert_outputs"], a["remove_inputs"] = 0, 11
	a["fetch_stable"], a["request_base"] = 22, 33

	first := ResponseDigest(a, nil)
	for i := 0; i < 64; i++ {
		if got := ResponseDigest(a, nil); got != first {
			t.Fatalf("digest of the same map changed between calls: %x vs %x", got, first)
		}
		if got := ResponseDigest(b, nil); got != first {
			t.Fatalf("digest depends on map insertion order: %x vs %x", got, first)
		}
	}
	// Different content must move the digest.
	b["insert_outputs"] = 999
	if ResponseDigest(b, nil) == first {
		t.Fatal("digest ignored a changed map value")
	}
	// Errors are part of the digest.
	if ResponseDigest(a, errors.New("boom")) == first {
		t.Fatal("digest ignored the error")
	}
}

// TestResponseDigestShapes pins the canonical encoder's handling of the
// shapes canister responses actually use: nested structs, byte slices,
// nil-vs-empty, and pointers.
func TestResponseDigestShapes(t *testing.T) {
	type inner struct {
		N int64
		B []byte
	}
	type outer struct {
		Name  string
		Inner inner
		Ptr   *inner
		List  []inner
		M     map[int64][]byte
	}
	v1 := outer{
		Name:  "x",
		Inner: inner{N: 7, B: []byte{1, 2}},
		Ptr:   &inner{N: 9},
		List:  []inner{{N: 1}, {N: 2}},
		M:     map[int64][]byte{3: {3}, 1: {1}, 2: {2}},
	}
	v2 := outer{
		Name:  "x",
		Inner: inner{N: 7, B: []byte{1, 2}},
		Ptr:   &inner{N: 9},
		List:  []inner{{N: 1}, {N: 2}},
		M:     map[int64][]byte{2: {2}, 1: {1}, 3: {3}},
	}
	if ResponseDigest(v1, nil) != ResponseDigest(v2, nil) {
		t.Fatal("equal values digested differently")
	}
	v2.List[1].N = 3
	if ResponseDigest(v1, nil) == ResponseDigest(v2, nil) {
		t.Fatal("nested change did not move the digest")
	}
	// nil and empty slices are distinct values and must not collide with
	// each other via length alone.
	if ResponseDigest([]byte(nil), nil) == ResponseDigest([]byte{}, nil) {
		t.Fatal("nil slice collided with empty slice")
	}
	if ResponseDigest(nil, nil) == ResponseDigest(uint64(0), nil) {
		t.Fatal("nil collided with zero")
	}
}

// TestCertifyMapValuedResultTwice drives the full certification path twice
// over the same map-valued result: the committee signature produced for one
// rendering of the map must verify against an independently rebuilt (and
// differently ordered) rendering. With the old %#v digest this failed with
// overwhelming probability.
func TestCertifyMapValuedResultTwice(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	committee, err := tecdsa.NewCommittee(4, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	s := &Subnet{committee: committee}

	value := map[string]uint64{"a": 1, "b": 2, "c": 3, "d": 4}
	d1 := responseDigest(value, nil)
	sig, err := committee.SignSchnorr(d1[:])
	if err != nil {
		t.Fatal(err)
	}
	serialized := sig.Serialize()

	// Rebuild "the same" result as a client would after transport.
	rebuilt := map[string]uint64{"d": 4, "c": 3, "b": 2, "a": 1}
	for i := 0; i < 8; i++ {
		if !s.VerifyCertified(rebuilt, nil, serialized) {
			t.Fatalf("round %d: certification of a map-valued result did not verify", i)
		}
	}
	rebuilt["a"] = 99
	if s.VerifyCertified(rebuilt, nil, serialized) {
		t.Fatal("tampered map-valued result verified")
	}
}
