package ic

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math/rand"
	"time"

	"icbtc/internal/simnet"
	"icbtc/internal/tecdsa"
)

// Config parameterizes a subnet. Defaults reproduce the latency envelope
// the paper reports for IC mainnet (§IV-B): replicated requests answered in
// 7–18 s (min ≈ 7 s, p90 ≈ 18 s), queries in a few hundred milliseconds.
type Config struct {
	// N is the number of replicas (must be 3f+1 for some f ≥ 0).
	N int
	// RoundInterval is the target block time.
	RoundInterval time.Duration
	// FinalizeBase/FinalizeJitter bound the notarization+finalization delay
	// after a block proposal.
	FinalizeBase, FinalizeJitter time.Duration
	// CertifyDelay is the response-certification (threshold signature) time.
	CertifyDelay time.Duration
	// XNetDelay is the one-way cross-subnet transfer time for replicated
	// calls arriving from (and returning to) canisters on other subnets.
	XNetDelay time.Duration
	// DegradedRoundProb is the probability a round degrades (block maker
	// timeout, fallback to the next rank), adding RoundExtension delay.
	DegradedRoundProb float64
	// RoundExtension is the extra delay of a degraded round.
	RoundExtension time.Duration
	// QueryRTTBase/QueryRTTJitter model the client↔replica network for
	// non-replicated queries.
	QueryRTTBase, QueryRTTJitter time.Duration
	// QueryRate and UpdateRate convert instructions to execution seconds.
	QueryRate, UpdateRate float64
	// MaxIngressPerBlock bounds per-block ingress messages.
	MaxIngressPerBlock int
	// Seed seeds the beacon and the threshold-key DKG.
	Seed int64
	// DisableThresholdKeys skips DKG (faster tests that do not sign).
	DisableThresholdKeys bool
}

// DefaultConfig returns the mainnet-flavored configuration: 13 replicas
// (f = 4), 1 s rounds.
func DefaultConfig() Config {
	return Config{
		N:                  13,
		RoundInterval:      time.Second,
		FinalizeBase:       900 * time.Millisecond,
		FinalizeJitter:     900 * time.Millisecond,
		CertifyDelay:       1200 * time.Millisecond,
		XNetDelay:          2300 * time.Millisecond,
		DegradedRoundProb:  0.12,
		RoundExtension:     9 * time.Second,
		QueryRTTBase:       180 * time.Millisecond,
		QueryRTTJitter:     80 * time.Millisecond,
		QueryRate:          2e8,
		UpdateRate:         2e9,
		MaxIngressPerBlock: 64,
		Seed:               1,
	}
}

// Replica is one subnet node. Honest replicas build payloads from their own
// Bitcoin adapter; Byzantine replicas may substitute arbitrary payloads when
// they are the block maker.
type Replica struct {
	Index int
	ID    simnet.NodeID
	// payloadBuilders produce per-canister payloads when this replica makes
	// a block.
	payloadBuilders map[CanisterID]PayloadBuilder
	// Byzantine marks the replica as attacker-controlled.
	Byzantine bool
	// MaliciousPayload, when set on a Byzantine replica, overrides the
	// payload for a canister when this replica is the block maker.
	MaliciousPayload func(CanisterID) any
	// Down marks a crashed replica; it is skipped as block maker.
	Down bool
}

// SetPayloadBuilder installs the builder used when this replica proposes.
func (r *Replica) SetPayloadBuilder(id CanisterID, b PayloadBuilder) {
	r.payloadBuilders[id] = b
}

// Result is the outcome of a canister call.
type Result struct {
	Value any
	Err   error
	// Instructions charged during the execution.
	Instructions uint64
	// Latency is the end-to-end virtual time from submission to response.
	Latency time.Duration
	// Certified indicates the response carries a subnet threshold signature
	// (replicated calls, and queries served by a certified read-replica
	// fleet).
	Certified bool
	// Signature is the subnet's Schnorr certification over the response
	// hash, when Certified.
	Signature []byte
	// CertAnchorHeight/CertTipHeight are the chain position a certified
	// query response is bound to (see CertifiedQuery); zero for replicated
	// calls, whose digest covers the value and error alone.
	CertAnchorHeight, CertTipHeight int64
	// Forwarded marks a query that exceeded the fleet's staleness bound and
	// was served by the authoritative canister instead of a read replica.
	Forwarded bool
	// Degraded is the explicit staleness annotation: the Bitcoin adapter
	// behind the authoritative canister reported a stalled chain feed, so
	// the served data may trail the real network arbitrarily.
	Degraded bool
}

// RoutedQuery is the outcome a QueryRouter returns for one query: the
// response, the instructions the serving replica charged, and — when the
// router certifies responses — the signature over the CertifiedQuery
// envelope together with the chain position it binds.
type RoutedQuery struct {
	Value        any
	Err          error
	Instructions uint64
	// Signature, when non-nil, certifies CertifiedQuery{Method, Value,
	// ErrText, AnchorHeight, TipHeight} under the subnet key.
	Signature    []byte
	AnchorHeight int64
	TipHeight    int64
	// Forwarded reports that the staleness bound pushed the query to the
	// authoritative canister.
	Forwarded bool
	// Degraded annotates the response as served off a possibly stale view:
	// the chain feed behind the authoritative canister is stalled.
	Degraded bool
}

// QueryRouter serves non-replicated queries for a canister in place of the
// single-instance execution — the read-replica query fleet. Implementations
// must be safe for concurrent use.
type QueryRouter interface {
	RouteQuery(method string, arg any, caller string, now time.Time) RoutedQuery
}

// BlockMetrics records the execution cost of one finalized block.
type BlockMetrics struct {
	Round        int64
	Instructions uint64
	Categories   map[string]uint64
	Ingress      int
	Payloads     int
}

// Subnet is a replicated state machine hosting canisters.
type Subnet struct {
	cfg     Config
	sched   *simnet.Scheduler
	rng     *rand.Rand
	beacon  []byte
	running bool
	halted  bool

	replicas  []*Replica
	canisters map[CanisterID]Canister
	routers   map[CanisterID]QueryRouter
	committee *tecdsa.Committee

	// upgrades journals per-canister upgrade state so a crash mid-install is
	// detectable and recoverable (see UpgradeCanister).
	upgrades map[CanisterID]*upgradeJournal
	// armedCrash, when set, makes the next UpgradeCanister crash at the
	// configured point (chaos fault injection); consumed by that call.
	armedCrash *UpgradeCrash
	// lastUpgrade reports how the most recent UpgradeCanister call ended.
	lastUpgrade UpgradeReport

	round   int64
	ingress []*pendingCall

	// blockMetrics keeps per-block execution statistics for experiments.
	blockMetrics []BlockMetrics
	// onRound observers (tests hook round progression).
	onRound []func(round int64, maker *Replica)
}

type pendingCall struct {
	canister  CanisterID
	method    string
	arg       any
	caller    string
	submitted time.Time
	cb        func(Result)
}

// NewSubnet creates a subnet with the given configuration on a scheduler.
func NewSubnet(sched *simnet.Scheduler, cfg Config) (*Subnet, error) {
	if cfg.N <= 0 || (cfg.N-1)%3 != 0 {
		return nil, fmt.Errorf("ic: subnet size must be 3f+1, got %d", cfg.N)
	}
	s := &Subnet{
		cfg:       cfg,
		sched:     sched,
		rng:       rand.New(rand.NewSource(cfg.Seed)),
		canisters: make(map[CanisterID]Canister),
		routers:   make(map[CanisterID]QueryRouter),
		upgrades:  make(map[CanisterID]*upgradeJournal),
	}
	seed := sha256.Sum256([]byte(fmt.Sprintf("beacon-%d", cfg.Seed)))
	s.beacon = seed[:]
	f := (cfg.N - 1) / 3
	if !cfg.DisableThresholdKeys {
		committee, err := tecdsa.NewCommittee(cfg.N, f, s.rng)
		if err != nil {
			return nil, fmt.Errorf("ic: threshold DKG: %w", err)
		}
		s.committee = committee
	}
	for i := 0; i < cfg.N; i++ {
		s.replicas = append(s.replicas, &Replica{
			Index:           i,
			ID:              simnet.NodeID(fmt.Sprintf("ic/%d", i)),
			payloadBuilders: make(map[CanisterID]PayloadBuilder),
		})
	}
	return s, nil
}

// F returns the fault tolerance f = (n-1)/3.
func (s *Subnet) F() int { return (s.cfg.N - 1) / 3 }

// Replicas returns the subnet's replicas.
func (s *Subnet) Replicas() []*Replica { return s.replicas }

// Committee exposes the threshold-signature committee (nil when disabled).
func (s *Subnet) Committee() *tecdsa.Committee { return s.committee }

// Round returns the current consensus round number.
func (s *Subnet) Round() int64 { return s.round }

// InstallCanister deploys a canister under an ID.
func (s *Subnet) InstallCanister(id CanisterID, c Canister) {
	s.canisters[id] = c
}

// Canister returns an installed canister.
func (s *Subnet) Canister(id CanisterID) Canister { return s.canisters[id] }

// SetQueryRouter installs a read-replica query router for a canister:
// subsequent Query calls for that canister are served by the router (the
// fleet) instead of the single canister instance. Passing nil uninstalls.
func (s *Subnet) SetQueryRouter(id CanisterID, r QueryRouter) {
	if r == nil {
		delete(s.routers, id)
		return
	}
	s.routers[id] = r
}

// CrashStage selects where an armed upgrade crash strikes the install.
type CrashStage int

const (
	// CrashTornWrite kills the process mid-write: only a prefix of the
	// pending snapshot reaches disk (a torn state image).
	CrashTornWrite CrashStage = iota + 1
	// CrashBitFlip corrupts one bit of the fully written pending image —
	// the media-fault flavor of a torn state.
	CrashBitFlip
	// CrashMidRestore writes the pending image intact but kills the process
	// during the restore/install step, before the completion marker is set.
	CrashMidRestore
)

func (c CrashStage) String() string {
	switch c {
	case CrashTornWrite:
		return "torn-write"
	case CrashBitFlip:
		return "bit-flip"
	case CrashMidRestore:
		return "mid-restore"
	default:
		return fmt.Sprintf("CrashStage(%d)", int(c))
	}
}

// UpgradeCrash arms a crash for the next UpgradeCanister call. Offset seeds
// where the damage lands (byte offset for torn writes, bit position for
// flips); it is reduced modulo the image size.
type UpgradeCrash struct {
	Stage  CrashStage
	Offset int
}

// RecoverySource says which image a recovered upgrade restarted from.
type RecoverySource int

const (
	// RecoveryNone: the upgrade completed without recovery.
	RecoveryNone RecoverySource = iota
	// RecoveryPending: the pending image survived intact (restore-completion
	// marker was missing but the bytes verified), so recovery replayed it.
	RecoveryPending
	// RecoveryCheckpoint: the pending image was torn/corrupt; recovery fell
	// back to the last good checkpoint (CommitCheckpoint / last completed
	// upgrade).
	RecoveryCheckpoint
)

func (r RecoverySource) String() string {
	switch r {
	case RecoveryNone:
		return "none"
	case RecoveryPending:
		return "pending"
	case RecoveryCheckpoint:
		return "checkpoint"
	default:
		return fmt.Sprintf("RecoverySource(%d)", int(r))
	}
}

// UpgradeReport describes how the most recent UpgradeCanister call ended:
// whether an armed crash fired, whether the pending image was detected as
// torn, and which image recovery restarted from.
type UpgradeReport struct {
	Crashed       bool
	Stage         CrashStage
	TornDetected  bool
	RecoveredFrom RecoverySource
}

// upgradeJournal is the per-canister durable upgrade record: the last image
// known good (checkpoint), the image of the in-flight upgrade (pending), and
// the restore-completion marker that distinguishes a finished install from
// one the process died inside.
type upgradeJournal struct {
	checkpoint []byte
	pending    []byte
	complete   bool
}

// ArmUpgradeCrash makes the next UpgradeCanister call crash at the given
// point. The arm is consumed by that call; recovery runs in the same call
// (modeling the post-restart recovery path) and its outcome is readable via
// LastUpgrade.
func (s *Subnet) ArmUpgradeCrash(c UpgradeCrash) { s.armedCrash = &c }

// LastUpgrade reports how the most recent UpgradeCanister call ended.
func (s *Subnet) LastUpgrade() UpgradeReport { return s.lastUpgrade }

// CommitCheckpoint snapshots the live canister into the upgrade journal's
// last-known-good slot — the image a torn upgrade falls back to. Upgrades
// that complete update the checkpoint themselves; call this to establish a
// baseline before the first upgrade (or to tighten the fallback window).
func (s *Subnet) CommitCheckpoint(id CanisterID) error {
	can := s.canisters[id]
	if can == nil {
		return fmt.Errorf("ic: checkpoint: canister %s not found", id)
	}
	sn, ok := can.(Snapshotter)
	if !ok {
		return fmt.Errorf("ic: checkpoint: canister %s has no stable state (does not implement Snapshotter)", id)
	}
	snapshot, err := sn.Snapshot()
	if err != nil {
		return fmt.Errorf("ic: checkpoint: snapshot of %s: %w", id, err)
	}
	j := s.journal(id)
	j.checkpoint = snapshot
	return nil
}

func (s *Subnet) journal(id CanisterID) *upgradeJournal {
	j := s.upgrades[id]
	if j == nil {
		j = &upgradeJournal{}
		s.upgrades[id] = j
	}
	return j
}

// UpgradeCanister performs a canister upgrade round: the running canister
// is stopped, its stable state is captured with Snapshot, reinstall builds
// the upgraded instance from those bytes, and the result replaces the old
// instance under the same ID. The upgrade is atomic with respect to rounds
// — it must be invoked between block executions (e.g. from an OnRound
// observer or from the driving test), mirroring how the real IC drains a
// canister's queues before swapping its Wasm while stable memory carries
// the state across.
//
// The upgrade is journaled: the snapshot is written to a pending slot, the
// install runs, and only then is the restore-completion marker set and the
// pending image promoted to the checkpoint (last known good). A crash armed
// via ArmUpgradeCrash interrupts that sequence at a chosen point — torn
// write, bit flip, or mid-restore — and the same call then runs the
// post-restart recovery path: the pending image is re-verified (statecodec
// checksum on decode plus a byte-identical re-snapshot round-trip — the
// completion marker being absent means it cannot be trusted blindly), and
// either replayed (intact) or discarded in favor of the checkpoint (torn).
// LastUpgrade reports which. A torn pending image with no checkpoint is an
// explicit unrecoverable error, never a silent install.
//
// Payload builders and callers that captured the old canister pointer must
// resolve the canister through Canister(id) per round instead; the old
// instance is frozen at the snapshot point and no longer installed.
func (s *Subnet) UpgradeCanister(id CanisterID, reinstall func(snapshot []byte) (Canister, error)) error {
	can := s.canisters[id]
	if can == nil {
		return fmt.Errorf("ic: upgrade: canister %s not found", id)
	}
	sn, ok := can.(Snapshotter)
	if !ok {
		return fmt.Errorf("ic: upgrade: canister %s has no stable state (does not implement Snapshotter)", id)
	}
	snapshot, err := sn.Snapshot()
	if err != nil {
		return fmt.Errorf("ic: upgrade: snapshot of %s: %w", id, err)
	}
	j := s.journal(id)
	j.complete = false

	if crash := s.armedCrash; crash != nil {
		s.armedCrash = nil
		s.lastUpgrade = UpgradeReport{Crashed: true, Stage: crash.Stage}
		switch crash.Stage {
		case CrashTornWrite:
			// Only a strict prefix of the image reached the pending slot.
			cut := 0
			if len(snapshot) > 0 {
				cut = crash.Offset % len(snapshot)
			}
			j.pending = append([]byte(nil), snapshot[:cut]...)
		case CrashBitFlip:
			cp := append([]byte(nil), snapshot...)
			if len(cp) > 0 {
				off := crash.Offset % len(cp)
				cp[off] ^= 1 << (crash.Offset % 8)
			}
			j.pending = cp
		case CrashMidRestore:
			// The image landed intact; the process died inside the install,
			// so whatever reinstall built is lost — only the journal (with
			// its completion marker still unset) survives the restart.
			j.pending = append([]byte(nil), snapshot...)
			if next, err := reinstall(j.pending); err == nil && next != nil {
				_ = next // died before the swap: discard
			}
		default:
			return fmt.Errorf("ic: upgrade: unknown crash stage %v", crash.Stage)
		}
		return s.recoverUpgrade(id, j, reinstall)
	}

	j.pending = append([]byte(nil), snapshot...)
	next, err := reinstall(j.pending)
	if err != nil {
		return fmt.Errorf("ic: upgrade: reinstall of %s: %w", id, err)
	}
	if next == nil {
		return fmt.Errorf("ic: upgrade: reinstall of %s returned no canister", id)
	}
	s.canisters[id] = next
	j.complete = true
	j.checkpoint = j.pending
	s.lastUpgrade = UpgradeReport{}
	return nil
}

// recoverUpgrade is the post-restart path after a crashed upgrade: the
// completion marker is unset, so the pending image must prove itself before
// it is trusted — reinstall must accept it AND the rebuilt canister must
// re-snapshot byte-identical to it (no silent acceptance of a near-miss
// decode). Anything less is a detected torn state, and recovery falls back
// to the last good checkpoint.
func (s *Subnet) recoverUpgrade(id CanisterID, j *upgradeJournal, reinstall func(snapshot []byte) (Canister, error)) error {
	if len(j.pending) > 0 {
		if next, err := reinstall(j.pending); err == nil && next != nil {
			if rsn, ok := next.(Snapshotter); ok {
				if again, err := rsn.Snapshot(); err == nil && bytes.Equal(again, j.pending) {
					s.canisters[id] = next
					j.complete = true
					j.checkpoint = j.pending
					s.lastUpgrade.RecoveredFrom = RecoveryPending
					return nil
				}
			}
		}
	}
	s.lastUpgrade.TornDetected = true
	if j.checkpoint == nil {
		return fmt.Errorf("ic: upgrade: %s crashed with a torn pending image and no checkpoint to recover from", id)
	}
	next, err := reinstall(j.checkpoint)
	if err != nil {
		return fmt.Errorf("ic: upgrade: %s recovery from checkpoint: %w", id, err)
	}
	if next == nil {
		return fmt.Errorf("ic: upgrade: %s recovery from checkpoint returned no canister", id)
	}
	s.canisters[id] = next
	j.pending = nil
	j.complete = true
	s.lastUpgrade.RecoveredFrom = RecoveryCheckpoint
	return nil
}

// OnRound registers an observer invoked at each round start with the round
// number and the selected block maker.
func (s *Subnet) OnRound(fn func(round int64, maker *Replica)) {
	s.onRound = append(s.onRound, fn)
}

// Start begins the consensus round loop.
func (s *Subnet) Start() {
	if s.running {
		return
	}
	s.running = true
	s.sched.After(s.cfg.RoundInterval, s.runRound)
}

// SetHalted pauses (true) or resumes (false) block production — the
// "downtime of the Bitcoin canister" scenario of §IV-A. While halted the
// round loop keeps ticking but produces no blocks.
func (s *Subnet) SetHalted(h bool) { s.halted = h }

// blockMakerFor ranks replicas for a round using the random beacon and
// returns the first rank that is not down.
func (s *Subnet) blockMakerFor(round int64) *Replica {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], uint64(round))
	h := sha256.Sum256(append(append([]byte{}, s.beacon...), buf[:]...))
	// Fisher-Yates driven by the beacon gives the full ranking.
	perm := make([]int, len(s.replicas))
	for i := range perm {
		perm[i] = i
	}
	rnd := rand.New(rand.NewSource(int64(binary.BigEndian.Uint64(h[:8]))))
	rnd.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
	for _, idx := range perm {
		if !s.replicas[idx].Down {
			return s.replicas[idx]
		}
	}
	return nil
}

// runRound executes one consensus round: select the block maker, assemble
// the block (payloads + ingress), and schedule deterministic execution at
// finalization time.
func (s *Subnet) runRound() {
	if !s.running {
		return
	}
	defer s.sched.After(s.cfg.RoundInterval, s.runRound)
	if s.halted {
		return
	}
	round := s.round
	s.round++
	maker := s.blockMakerFor(round)
	if maker == nil {
		return // all replicas down
	}
	for _, fn := range s.onRound {
		fn(round, maker)
	}

	// Assemble payloads: the block maker queries its own builders; a
	// Byzantine maker may substitute arbitrary payloads.
	type payloadEntry struct {
		canister CanisterID
		payload  any
	}
	var payloads []payloadEntry
	for id := range s.canisters {
		if _, ok := s.canisters[id].(PayloadProcessor); !ok {
			continue
		}
		var p any
		if maker.Byzantine && maker.MaliciousPayload != nil {
			p = maker.MaliciousPayload(id)
		} else if b := maker.payloadBuilders[id]; b != nil {
			p = b.BuildPayload()
		}
		if p != nil {
			payloads = append(payloads, payloadEntry{canister: id, payload: p})
		}
	}

	// Drain ingress up to the per-block limit.
	take := len(s.ingress)
	if s.cfg.MaxIngressPerBlock > 0 && take > s.cfg.MaxIngressPerBlock {
		take = s.cfg.MaxIngressPerBlock
	}
	batch := s.ingress[:take]
	s.ingress = append([]*pendingCall(nil), s.ingress[take:]...)

	// Finalization delay, possibly degraded (maker timeout → next rank).
	delay := s.cfg.FinalizeBase
	if s.cfg.FinalizeJitter > 0 {
		delay += time.Duration(s.rng.Int63n(int64(s.cfg.FinalizeJitter)))
	}
	if s.cfg.DegradedRoundProb > 0 && s.rng.Float64() < s.cfg.DegradedRoundProb {
		delay += s.cfg.RoundExtension
	}
	s.sched.After(delay, func() {
		if s.halted {
			return // halted while the block was in flight
		}
		blockTime := s.sched.Now()
		metrics := BlockMetrics{Round: round, Categories: make(map[string]uint64)}
		// 1. Payload processing (Bitcoin adapter responses etc.).
		for _, pe := range payloads {
			proc := s.canisters[pe.canister].(PayloadProcessor)
			meter := NewMeter()
			ctx := &CallContext{Meter: meter, Time: blockTime, Caller: "consensus", Kind: KindUpdate, subnet: s}
			// Errors are intentionally swallowed after accounting: a bad
			// payload must not halt the subnet.
			_ = proc.ProcessPayload(ctx, pe.payload)
			metrics.Instructions += meter.Total()
			for k, v := range meter.Categories() {
				metrics.Categories[k] += v
			}
			metrics.Payloads++
		}
		// 2. Ingress execution in consensus order.
		for _, call := range batch {
			s.executeUpdate(call, blockTime, &metrics)
		}
		// 3. Timers.
		for _, can := range s.canisters {
			if th, ok := can.(TimerHandler); ok {
				meter := NewMeter()
				ctx := &CallContext{Meter: meter, Time: blockTime, Caller: "timer", Kind: KindUpdate, subnet: s}
				th.OnTimer(ctx)
				metrics.Instructions += meter.Total()
			}
		}
		s.blockMetrics = append(s.blockMetrics, metrics)
	})
}

// executeUpdate runs one replicated call and schedules its certified
// response delivery.
func (s *Subnet) executeUpdate(call *pendingCall, blockTime time.Time, metrics *BlockMetrics) {
	can := s.canisters[call.canister]
	meter := NewMeter()
	res := Result{Certified: true}
	if can == nil {
		res.Err = fmt.Errorf("ic: canister %s not found", call.canister)
	} else if err := checkDispatch(can, call.method, KindUpdate); err != nil {
		res.Err = err
	} else {
		ctx := &CallContext{Meter: meter, Time: blockTime, Caller: call.caller, Kind: KindUpdate, subnet: s}
		res.Value, res.Err = can.Update(ctx, call.method, call.arg)
	}
	res.Instructions = meter.Total()
	metrics.Instructions += meter.Total()
	for k, v := range meter.Categories() {
		metrics.Categories[k] += v
	}
	metrics.Ingress++

	// Execution time + certification + XNet return hop.
	execTime := time.Duration(float64(meter.Total()) / s.cfg.UpdateRate * float64(time.Second))
	respDelay := execTime + s.cfg.CertifyDelay + s.cfg.XNetDelay
	submitted := call.submitted
	cb := call.cb
	s.sched.After(respDelay, func() {
		res.Latency = s.sched.Now().Sub(submitted)
		if s.committee != nil {
			// Certify the response with the subnet key so "any entity that
			// knows the public key of the corresponding subnet" can verify
			// it (§VI).
			digest := responseDigest(res.Value, res.Err)
			if sig, err := s.committee.SignSchnorr(digest[:]); err == nil {
				res.Signature = sig.Serialize()
			}
		}
		if cb != nil {
			cb(res)
		}
	})
}

// SubmitUpdate submits a replicated call as if from a canister on another
// subnet: the request pays the inbound XNet hop, waits for block inclusion,
// executes at finalization, and returns a certified response. cb runs on
// the simulation goroutine when the response arrives.
func (s *Subnet) SubmitUpdate(canister CanisterID, method string, arg any, caller string, cb func(Result)) {
	submitted := s.sched.Now()
	s.sched.After(s.cfg.XNetDelay, func() {
		s.ingress = append(s.ingress, &pendingCall{
			canister:  canister,
			method:    method,
			arg:       arg,
			caller:    caller,
			submitted: submitted,
			cb:        cb,
		})
	})
}

// Query executes a non-replicated call against the current state on a
// single randomly chosen replica. The response is not certified ("cannot be
// fully trusted", §IV-B).
func (s *Subnet) Query(canister CanisterID, method string, arg any, caller string, cb func(Result)) {
	submitted := s.sched.Now()
	rtt := s.cfg.QueryRTTBase
	if s.cfg.QueryRTTJitter > 0 {
		rtt += time.Duration(s.rng.Int63n(int64(s.cfg.QueryRTTJitter)))
	}
	// Request travels half the RTT, executes, then returns.
	s.sched.After(rtt/2, func() {
		res := Result{}
		if router := s.routers[canister]; router != nil {
			// Read-replica fleet: the query is served (and certified) by a
			// snapshot-hydrated, delta-fed replica instead of the single
			// canister instance.
			rq := router.RouteQuery(method, arg, caller, s.sched.Now())
			res.Value, res.Err = rq.Value, rq.Err
			res.Instructions = rq.Instructions
			res.Forwarded = rq.Forwarded
			res.Degraded = rq.Degraded
			if rq.Signature != nil {
				res.Certified = true
				res.Signature = rq.Signature
				res.CertAnchorHeight = rq.AnchorHeight
				res.CertTipHeight = rq.TipHeight
			}
		} else {
			can := s.canisters[canister]
			meter := NewMeter()
			if can == nil {
				res.Err = fmt.Errorf("ic: canister %s not found", canister)
			} else if err := checkDispatch(can, method, KindQuery); err != nil {
				res.Err = err
			} else {
				ctx := &CallContext{Meter: meter, Time: s.sched.Now(), Caller: caller, Kind: KindQuery, subnet: s}
				res.Value, res.Err = can.Query(ctx, method, arg)
			}
			res.Instructions = meter.Total()
		}
		execTime := time.Duration(float64(res.Instructions) / s.cfg.QueryRate * float64(time.Second))
		s.sched.After(execTime+rtt/2, func() {
			res.Latency = s.sched.Now().Sub(submitted)
			if cb != nil {
				cb(res)
			}
		})
	})
}

// BlockMetricsLog returns the accumulated per-block execution metrics.
func (s *Subnet) BlockMetricsLog() []BlockMetrics { return s.blockMetrics }

// ResetBlockMetrics clears the metrics log (between experiment phases).
func (s *Subnet) ResetBlockMetrics() { s.blockMetrics = nil }

// VerifyCertifiedQuery rebuilds the CertifiedQuery envelope of a routed
// query response and checks its fleet certification against the subnet's
// public key — what a client holding only the response and the subnet key
// does.
func (s *Subnet) VerifyCertifiedQuery(method string, res Result) bool {
	if !res.Certified {
		return false
	}
	env := CertifiedQuery{
		Method:       method,
		Value:        res.Value,
		ErrText:      ErrText(res.Err),
		AnchorHeight: res.CertAnchorHeight,
		TipHeight:    res.CertTipHeight,
	}
	return s.VerifyCertified(env, nil, res.Signature)
}

// VerifyCertified checks a certified response signature against the
// subnet's public key.
func (s *Subnet) VerifyCertified(value any, errVal error, signature []byte) bool {
	if s.committee == nil || len(signature) != 64 {
		return false
	}
	digest := responseDigest(value, errVal)
	sig, err := parseSchnorr(signature)
	if err != nil {
		return false
	}
	px := xOnly(s.committee.PublicKey().SerializeCompressed())
	return verifySchnorr(sig, digest[:], px)
}

// responseDigest is the canonical response digest (see digest.go): a pure
// function of the response value and error, stable across runs and replicas
// even for map-valued results.
func responseDigest(value any, err error) [32]byte {
	return ResponseDigest(value, err)
}
