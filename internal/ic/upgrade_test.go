package ic

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"testing"
)

// vaultCanister is a minimal snapshottable canister with a checksummed wire
// image — the property the torn-upgrade recovery path leans on: damaged
// bytes must fail reinstall instead of decoding into plausible garbage
// (mirroring statecodec's CRC trailer on the real canister).
type vaultCanister struct{ value uint64 }

func encodeVault(v uint64) []byte {
	var body [8]byte
	binary.BigEndian.PutUint64(body[:], v)
	sum := sha256.Sum256(body[:])
	return append(body[:], sum[:8]...)
}

func decodeVault(b []byte) (uint64, error) {
	if len(b) != 16 {
		return 0, fmt.Errorf("vault: image is %d bytes, want 16", len(b))
	}
	sum := sha256.Sum256(b[:8])
	for i := 0; i < 8; i++ {
		if b[8+i] != sum[i] {
			return 0, fmt.Errorf("vault: checksum mismatch")
		}
	}
	return binary.BigEndian.Uint64(b[:8]), nil
}

func (c *vaultCanister) Update(ctx *CallContext, method string, arg any) (any, error) {
	if method == "set" {
		c.value = arg.(uint64)
		return c.value, nil
	}
	return nil, fmt.Errorf("no method %s", method)
}

func (c *vaultCanister) Query(ctx *CallContext, method string, arg any) (any, error) {
	if method == "get" {
		return c.value, nil
	}
	return nil, fmt.Errorf("no method %s", method)
}

func (c *vaultCanister) Snapshot() ([]byte, error) { return encodeVault(c.value), nil }

func reinstallVault(snapshot []byte) (Canister, error) {
	v, err := decodeVault(snapshot)
	if err != nil {
		return nil, err
	}
	return &vaultCanister{value: v}, nil
}

func vaultValue(t *testing.T, s *Subnet, id CanisterID) uint64 {
	t.Helper()
	c, ok := s.Canister(id).(*vaultCanister)
	if !ok {
		t.Fatalf("canister %s is %T, want *vaultCanister", id, s.Canister(id))
	}
	return c.value
}

func newUpgradeSubnet(t *testing.T, value uint64) *Subnet {
	t.Helper()
	_, s := newTestSubnet(t, fastConfig())
	s.InstallCanister("vault", &vaultCanister{value: value})
	return s
}

// TestUpgradeCompletesAndPromotesCheckpoint pins the happy path: a clean
// upgrade swaps the instance, reports no crash, and promotes the pending
// image to the checkpoint — so a LATER torn upgrade falls back to the
// post-upgrade state, not an older baseline.
func TestUpgradeCompletesAndPromotesCheckpoint(t *testing.T) {
	s := newUpgradeSubnet(t, 41)
	old := s.Canister("vault")
	if err := s.UpgradeCanister("vault", reinstallVault); err != nil {
		t.Fatal(err)
	}
	if s.Canister("vault") == old {
		t.Fatal("upgrade did not replace the instance")
	}
	if rep := s.LastUpgrade(); rep != (UpgradeReport{}) {
		t.Fatalf("clean upgrade reported %+v", rep)
	}
	if got := vaultValue(t, s, "vault"); got != 41 {
		t.Fatalf("state lost across upgrade: %d", got)
	}

	// Mutate, then crash the next upgrade torn: recovery must land on the
	// checkpoint the completed upgrade promoted (41), not error out.
	s.Canister("vault").(*vaultCanister).value = 99
	s.ArmUpgradeCrash(UpgradeCrash{Stage: CrashTornWrite, Offset: 7})
	if err := s.UpgradeCanister("vault", reinstallVault); err != nil {
		t.Fatal(err)
	}
	rep := s.LastUpgrade()
	if !rep.Crashed || !rep.TornDetected || rep.RecoveredFrom != RecoveryCheckpoint {
		t.Fatalf("torn upgrade after a clean one: %+v", rep)
	}
	if got := vaultValue(t, s, "vault"); got != 41 {
		t.Fatalf("recovered to %d, want the promoted checkpoint 41", got)
	}
}

// TestUpgradeCrashTornWrite cuts the pending image mid-write: the length
// check rejects it, recovery falls back to the committed checkpoint.
func TestUpgradeCrashTornWrite(t *testing.T) {
	s := newUpgradeSubnet(t, 7)
	if err := s.CommitCheckpoint("vault"); err != nil {
		t.Fatal(err)
	}
	s.Canister("vault").(*vaultCanister).value = 8 // uncheckpointed progress
	s.ArmUpgradeCrash(UpgradeCrash{Stage: CrashTornWrite, Offset: 5})
	if err := s.UpgradeCanister("vault", reinstallVault); err != nil {
		t.Fatal(err)
	}
	rep := s.LastUpgrade()
	if !rep.Crashed || rep.Stage != CrashTornWrite || !rep.TornDetected || rep.RecoveredFrom != RecoveryCheckpoint {
		t.Fatalf("report %+v", rep)
	}
	if got := vaultValue(t, s, "vault"); got != 7 {
		t.Fatalf("recovered to %d, want checkpoint state 7", got)
	}
}

// TestUpgradeCrashBitFlip corrupts one bit of a fully written image: the
// checksum rejects it — a complete-looking image is still untrusted without
// the completion marker.
func TestUpgradeCrashBitFlip(t *testing.T) {
	s := newUpgradeSubnet(t, 7)
	if err := s.CommitCheckpoint("vault"); err != nil {
		t.Fatal(err)
	}
	s.ArmUpgradeCrash(UpgradeCrash{Stage: CrashBitFlip, Offset: 3})
	if err := s.UpgradeCanister("vault", reinstallVault); err != nil {
		t.Fatal(err)
	}
	rep := s.LastUpgrade()
	if !rep.Crashed || rep.Stage != CrashBitFlip || !rep.TornDetected || rep.RecoveredFrom != RecoveryCheckpoint {
		t.Fatalf("report %+v", rep)
	}
	if got := vaultValue(t, s, "vault"); got != 7 {
		t.Fatalf("recovered to %d, want checkpoint state 7", got)
	}
}

// TestUpgradeCrashMidRestore kills the process after the image landed intact
// but before the completion marker: recovery re-verifies the pending image
// (reinstall + byte-identical re-snapshot) and replays it — no state loss,
// no checkpoint needed.
func TestUpgradeCrashMidRestore(t *testing.T) {
	s := newUpgradeSubnet(t, 23)
	s.ArmUpgradeCrash(UpgradeCrash{Stage: CrashMidRestore})
	if err := s.UpgradeCanister("vault", reinstallVault); err != nil {
		t.Fatal(err)
	}
	rep := s.LastUpgrade()
	if !rep.Crashed || rep.Stage != CrashMidRestore || rep.TornDetected || rep.RecoveredFrom != RecoveryPending {
		t.Fatalf("report %+v", rep)
	}
	if got := vaultValue(t, s, "vault"); got != 23 {
		t.Fatalf("recovered to %d, want intact pending state 23", got)
	}
}

// TestUpgradeTornWithoutCheckpointFails pins the no-silent-acceptance rule:
// a torn pending image with nothing to fall back to is an explicit error,
// never an install of damaged bytes.
func TestUpgradeTornWithoutCheckpointFails(t *testing.T) {
	s := newUpgradeSubnet(t, 7)
	s.ArmUpgradeCrash(UpgradeCrash{Stage: CrashBitFlip, Offset: 0})
	err := s.UpgradeCanister("vault", reinstallVault)
	if err == nil {
		t.Fatal("torn image with no checkpoint was silently accepted")
	}
	rep := s.LastUpgrade()
	if !rep.Crashed || !rep.TornDetected || rep.RecoveredFrom != RecoveryNone {
		t.Fatalf("report %+v", rep)
	}
}
