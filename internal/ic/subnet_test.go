package ic

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"testing"
	"time"

	"icbtc/internal/secp256k1"
	"icbtc/internal/simnet"
)

// counterCanister is a minimal stateful canister used by the tests.
type counterCanister struct {
	value   int
	timers  int
	history []string
}

func (c *counterCanister) Update(ctx *CallContext, method string, arg any) (any, error) {
	ctx.Meter.Charge(1000, "counter")
	c.history = append(c.history, method)
	switch method {
	case "inc":
		c.value += arg.(int)
		return c.value, nil
	case "fail":
		return nil, errors.New("boom")
	case "sign":
		digest := sha256.Sum256([]byte("payload"))
		return ctx.SignWithECDSA(digest[:])
	default:
		return nil, fmt.Errorf("no method %s", method)
	}
}

func (c *counterCanister) Query(ctx *CallContext, method string, arg any) (any, error) {
	ctx.Meter.Charge(500, "counter")
	switch method {
	case "get":
		return c.value, nil
	case "sign":
		digest := sha256.Sum256([]byte("payload"))
		return ctx.SignWithECDSA(digest[:])
	default:
		return nil, fmt.Errorf("no method %s", method)
	}
}

func (c *counterCanister) OnTimer(ctx *CallContext) { c.timers++ }

func fastConfig() Config {
	cfg := DefaultConfig()
	cfg.N = 4
	cfg.DisableThresholdKeys = true
	cfg.DegradedRoundProb = 0
	return cfg
}

func newTestSubnet(t *testing.T, cfg Config) (*simnet.Scheduler, *Subnet) {
	t.Helper()
	sched := simnet.NewScheduler(cfg.Seed)
	s, err := NewSubnet(sched, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sched, s
}

func TestSubnetSizeValidation(t *testing.T) {
	sched := simnet.NewScheduler(1)
	for _, n := range []int{0, 2, 3, 5, 6, 8} {
		cfg := fastConfig()
		cfg.N = n
		if _, err := NewSubnet(sched, cfg); err == nil {
			t.Errorf("n=%d accepted", n)
		}
	}
	for _, n := range []int{1, 4, 7, 13} {
		cfg := fastConfig()
		cfg.N = n
		if _, err := NewSubnet(sched, cfg); err != nil {
			t.Errorf("n=%d rejected: %v", n, err)
		}
	}
}

func TestUpdateAndQuery(t *testing.T) {
	sched, s := newTestSubnet(t, fastConfig())
	c := &counterCanister{}
	s.InstallCanister("counter", c)
	s.Start()

	var updateRes, queryRes Result
	s.SubmitUpdate("counter", "inc", 5, "client", func(r Result) { updateRes = r })
	sched.RunFor(30 * time.Second)
	if updateRes.Err != nil {
		t.Fatalf("update: %v", updateRes.Err)
	}
	if updateRes.Value.(int) != 5 {
		t.Fatalf("value %v", updateRes.Value)
	}
	if !updateRes.Certified {
		t.Fatal("update response not certified")
	}
	if updateRes.Instructions == 0 {
		t.Fatal("no instructions charged")
	}

	s.Query("counter", "get", nil, "client", func(r Result) { queryRes = r })
	sched.RunFor(5 * time.Second)
	if queryRes.Err != nil || queryRes.Value.(int) != 5 {
		t.Fatalf("query %v %v", queryRes.Value, queryRes.Err)
	}
	if queryRes.Certified {
		t.Fatal("query response must not be certified")
	}
}

func TestReplicatedLatencyEnvelope(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DisableThresholdKeys = true
	sched, s := newTestSubnet(t, cfg)
	s.InstallCanister("counter", &counterCanister{})
	s.Start()

	var latencies []time.Duration
	for i := 0; i < 40; i++ {
		delay := time.Duration(i) * 700 * time.Millisecond
		sched.After(delay, func() {
			s.SubmitUpdate("counter", "inc", 1, "client", func(r Result) {
				latencies = append(latencies, r.Latency)
			})
		})
	}
	sched.RunFor(3 * time.Minute)
	if len(latencies) != 40 {
		t.Fatalf("got %d responses", len(latencies))
	}
	var min, max, sum time.Duration
	min = latencies[0]
	for _, l := range latencies {
		if l < min {
			min = l
		}
		if l > max {
			max = l
		}
		sum += l
	}
	avg := sum / time.Duration(len(latencies))
	// Paper: min ≈7s, avg <10s, p90 ≈18s. Allow generous bands; the exact
	// distribution is checked by the latency experiment.
	if min < 4*time.Second || min > 11*time.Second {
		t.Errorf("min latency %v outside [4s,11s]", min)
	}
	if avg < 5*time.Second || avg > 15*time.Second {
		t.Errorf("avg latency %v outside [5s,15s]", avg)
	}
	if max > 40*time.Second {
		t.Errorf("max latency %v too large", max)
	}
}

func TestQueryFasterThanUpdate(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DisableThresholdKeys = true
	sched, s := newTestSubnet(t, cfg)
	s.InstallCanister("counter", &counterCanister{})
	s.Start()

	var q, u Result
	s.Query("counter", "get", nil, "client", func(r Result) { q = r })
	s.SubmitUpdate("counter", "inc", 1, "client", func(r Result) { u = r })
	sched.RunFor(time.Minute)
	if q.Latency == 0 || u.Latency == 0 {
		t.Fatal("missing responses")
	}
	if q.Latency >= u.Latency {
		t.Fatalf("query %v not faster than update %v", q.Latency, u.Latency)
	}
	if q.Latency > time.Second {
		t.Fatalf("query latency %v implausibly high", q.Latency)
	}
}

func TestUpdateErrorPropagates(t *testing.T) {
	sched, s := newTestSubnet(t, fastConfig())
	s.InstallCanister("counter", &counterCanister{})
	s.Start()
	var res Result
	s.SubmitUpdate("counter", "fail", nil, "client", func(r Result) { res = r })
	sched.RunFor(30 * time.Second)
	if res.Err == nil {
		t.Fatal("error not propagated")
	}
	// Unknown canister.
	var res2 Result
	s.SubmitUpdate("ghost", "x", nil, "client", func(r Result) { res2 = r })
	sched.RunFor(30 * time.Second)
	if res2.Err == nil {
		t.Fatal("unknown canister call succeeded")
	}
}

func TestTimersRunPerBlock(t *testing.T) {
	sched, s := newTestSubnet(t, fastConfig())
	c := &counterCanister{}
	s.InstallCanister("counter", c)
	s.Start()
	sched.RunFor(10 * time.Second)
	if c.timers < 5 {
		t.Fatalf("timers ran %d times", c.timers)
	}
}

func TestHaltStopsExecution(t *testing.T) {
	sched, s := newTestSubnet(t, fastConfig())
	c := &counterCanister{}
	s.InstallCanister("counter", c)
	s.Start()
	sched.RunFor(5 * time.Second)
	before := c.timers
	s.SetHalted(true)
	sched.RunFor(10 * time.Second)
	if c.timers != before {
		t.Fatal("execution continued while halted")
	}
	s.SetHalted(false)
	sched.RunFor(5 * time.Second)
	if c.timers <= before {
		t.Fatal("execution did not resume")
	}
}

func TestBlockMakerRotationIsDeterministicAndFair(t *testing.T) {
	cfg := fastConfig()
	cfg.N = 13
	sched, s := newTestSubnet(t, cfg)
	counts := make(map[int]int)
	s.OnRound(func(round int64, maker *Replica) { counts[maker.Index]++ })
	s.Start()
	sched.RunFor(2000 * time.Second)
	total := 0
	for _, c := range counts {
		total += c
	}
	if total < 1900 {
		t.Fatalf("only %d rounds ran", total)
	}
	// Every replica should make blocks; roughly uniform (within 3x).
	for i := 0; i < 13; i++ {
		c := counts[i]
		if c == 0 {
			t.Fatalf("replica %d never made a block", i)
		}
		if c < total/13/3 || c > total/13*3 {
			t.Fatalf("replica %d made %d of %d blocks (unfair)", i, c, total)
		}
	}
}

func TestDownReplicaSkippedAsMaker(t *testing.T) {
	cfg := fastConfig()
	sched, s := newTestSubnet(t, cfg)
	s.Replicas()[0].Down = true
	s.Replicas()[1].Down = true
	made := make(map[int]bool)
	s.OnRound(func(_ int64, maker *Replica) { made[maker.Index] = true })
	s.Start()
	sched.RunFor(100 * time.Second)
	if made[0] || made[1] {
		t.Fatal("down replica made a block")
	}
	if !made[2] && !made[3] {
		t.Fatal("no live replica made blocks")
	}
}

// payloadCanister records payloads it processes.
type payloadCanister struct {
	got []any
}

func (p *payloadCanister) Update(ctx *CallContext, method string, arg any) (any, error) {
	return nil, nil
}
func (p *payloadCanister) Query(ctx *CallContext, method string, arg any) (any, error) {
	return nil, nil
}
func (p *payloadCanister) ProcessPayload(ctx *CallContext, payload any) error {
	ctx.Meter.Charge(42, "payload")
	p.got = append(p.got, payload)
	return nil
}

func TestPayloadPipeline(t *testing.T) {
	sched, s := newTestSubnet(t, fastConfig())
	pc := &payloadCanister{}
	s.InstallCanister("btc", pc)
	next := 0
	for _, r := range s.Replicas() {
		r.SetPayloadBuilder("btc", PayloadBuilderFunc(func() any {
			next++
			return fmt.Sprintf("payload-%d", next)
		}))
	}
	s.Start()
	sched.RunFor(10 * time.Second)
	if len(pc.got) < 5 {
		t.Fatalf("processed %d payloads", len(pc.got))
	}
	// Metrics must record payload instruction charges.
	var payloadInstr uint64
	for _, m := range s.BlockMetricsLog() {
		payloadInstr += m.Categories["payload"]
	}
	if payloadInstr == 0 {
		t.Fatal("payload instructions not recorded")
	}
}

func TestByzantineMakerInjectsPayload(t *testing.T) {
	cfg := fastConfig()
	sched, s := newTestSubnet(t, cfg)
	pc := &payloadCanister{}
	s.InstallCanister("btc", pc)
	for _, r := range s.Replicas() {
		r.SetPayloadBuilder("btc", PayloadBuilderFunc(func() any { return "honest" }))
	}
	// One Byzantine replica injects malicious payloads when it proposes.
	s.Replicas()[0].Byzantine = true
	s.Replicas()[0].MaliciousPayload = func(CanisterID) any { return "evil" }
	s.Start()
	sched.RunFor(200 * time.Second)

	honest, evil := 0, 0
	for _, p := range pc.got {
		switch p {
		case "honest":
			honest++
		case "evil":
			evil++
		}
	}
	if evil == 0 {
		t.Fatal("byzantine payload never delivered")
	}
	if honest == 0 {
		t.Fatal("honest payloads never delivered")
	}
	// With 1 of 4 replicas Byzantine, roughly 25% of payloads are evil.
	frac := float64(evil) / float64(evil+honest)
	if frac < 0.05 || frac > 0.6 {
		t.Fatalf("byzantine fraction %.2f implausible", frac)
	}
}

func TestThresholdSigningViaContext(t *testing.T) {
	cfg := fastConfig()
	cfg.N = 4
	cfg.DisableThresholdKeys = false
	sched, s := newTestSubnet(t, cfg)
	s.InstallCanister("counter", &counterCanister{})
	s.Start()

	var res Result
	s.SubmitUpdate("counter", "sign", nil, "client", func(r Result) { res = r })
	sched.RunFor(time.Minute)
	if res.Err != nil {
		t.Fatalf("sign: %v", res.Err)
	}
	der := res.Value.([]byte)
	sig, err := secp256k1.ParseDERSignature(der)
	if err != nil {
		t.Fatal(err)
	}
	digest := sha256.Sum256([]byte("payload"))
	if !sig.Verify(digest[:], s.Committee().PublicKey()) {
		t.Fatal("threshold signature invalid")
	}
	// Response must be certified and verifiable.
	if res.Signature == nil {
		t.Fatal("no certification signature")
	}
	if !s.VerifyCertified(res.Value, res.Err, res.Signature) {
		t.Fatal("certification did not verify")
	}
	// Tampered value must not verify.
	if s.VerifyCertified([]byte("other"), res.Err, res.Signature) {
		t.Fatal("tampered certification verified")
	}
}

func TestSigningRejectedInQuery(t *testing.T) {
	cfg := fastConfig()
	cfg.DisableThresholdKeys = false
	sched, s := newTestSubnet(t, cfg)
	s.InstallCanister("counter", &counterCanister{})
	s.Start()
	var res Result
	s.Query("counter", "sign", nil, "client", func(r Result) { res = r })
	sched.RunFor(10 * time.Second)
	if res.Err == nil {
		t.Fatal("sign_with_ecdsa allowed in query")
	}
}

func TestInstructionsToUSD(t *testing.T) {
	// ~5.8M instructions (a small balance request) must cost well under a
	// thousandth of a cent; ~476M (a huge UTXO request) under a cent.
	small := InstructionsToUSD(5_840_000)
	big := InstructionsToUSD(476_000_000)
	if small <= 0 || big <= small {
		t.Fatal("cost model not monotone")
	}
	if big > 0.01 {
		t.Fatalf("largest request costs %.4f USD", big)
	}
	// Paper: ~35,000 balance requests per dollar → one request ≈ $1/35000.
	perBalance := 1.0 / 35_000
	if small > perBalance*10 || small < perBalance/100 {
		t.Fatalf("balance request cost %.8f USD too far from paper's %.8f", small, perBalance)
	}
}

func TestMeterCategories(t *testing.T) {
	m := NewMeter()
	m.Charge(10, "a")
	m.Charge(5, "b")
	m.Charge(1, "a")
	if m.Total() != 16 || m.Category("a") != 11 || m.Category("b") != 5 {
		t.Fatal("meter arithmetic wrong")
	}
	cats := m.Categories()
	cats["a"] = 999 // must be a copy
	if m.Category("a") != 11 {
		t.Fatal("Categories returned live map")
	}
	m.Reset()
	if m.Total() != 0 || m.Category("a") != 0 {
		t.Fatal("reset failed")
	}
}
