package ic

import (
	"crypto/sha256"
	"encoding/binary"
	"io"
	"math"
	"reflect"
	"sort"
)

// Canonical response digests. Certified responses are hashed before the
// subnet threshold-signs them, so the digest must be a pure function of the
// response *value*: two replicas (or two runs) holding equal state must
// produce the identical digest. The previous implementation hashed
// fmt.Fprintf("%#v") output, which walks Go maps in randomized iteration
// order — any map-valued result certified to a different digest per run,
// breaking verification across processes. The encoder below walks values
// with reflection and serializes every container canonically: struct fields
// in declaration order, slices in element order, and map entries sorted by
// their encoded key bytes.

// responseDigestDomain separates response digests from any other use of
// SHA-256 in the system (and versions the canonical encoding itself).
const responseDigestDomain = "icbtc/response-digest/v1\n"

// ResponseDigest computes the canonical digest of a canister response: the
// returned value and the error (by message). Equal values — including
// map-valued results regardless of insertion order — always produce equal
// digests.
func ResponseDigest(value any, err error) [32]byte {
	h := sha256.New()
	io.WriteString(h, responseDigestDomain)
	writeCanonical(h, reflect.ValueOf(value))
	if err != nil {
		writeTag(h, 'E')
		writeString(h, err.Error())
	} else {
		writeTag(h, '0')
	}
	var out [32]byte
	h.Sum(out[:0])
	return out
}

// CertifiedQuery is the envelope a read replica certifies: the response of
// one query method bound to the chain position it was served at. The fleet
// signs ResponseDigest(CertifiedQuery{...}, nil); any holder of the subnet
// public key rebuilds the envelope from the response and verifies it with
// Subnet.VerifyCertified — the certification the paper notes plain queries
// lack ("cannot be fully trusted", §IV-B).
type CertifiedQuery struct {
	// Method is the query method name, so a valid signature over one
	// endpoint's response cannot be replayed as another's.
	Method string
	// Value is the response value; ErrText the error message ("" if none).
	Value   any
	ErrText string
	// AnchorHeight/TipHeight bind the response to the serving replica's
	// chain position (its anchor β* and considered-chain tip).
	AnchorHeight int64
	TipHeight    int64
}

// ErrText renders an error for a CertifiedQuery envelope.
func ErrText(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

func writeTag(w io.Writer, tag byte) { w.Write([]byte{tag}) }

func writeU64(w io.Writer, v uint64) {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], v)
	w.Write(buf[:])
}

func writeString(w io.Writer, s string) {
	writeU64(w, uint64(len(s)))
	io.WriteString(w, s)
}

// writeCanonical serializes v into w deterministically. Every value is
// prefixed with a one-byte kind tag (and structs with their type name) so
// distinct shapes cannot collide by concatenation.
func writeCanonical(w io.Writer, v reflect.Value) {
	if !v.IsValid() {
		writeTag(w, 'z') // nil interface
		return
	}
	switch v.Kind() {
	case reflect.Bool:
		writeTag(w, 'b')
		if v.Bool() {
			writeTag(w, 1)
		} else {
			writeTag(w, 0)
		}
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		writeTag(w, 'i')
		writeU64(w, uint64(v.Int()))
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64, reflect.Uintptr:
		writeTag(w, 'u')
		writeU64(w, v.Uint())
	case reflect.Float32, reflect.Float64:
		writeTag(w, 'f')
		writeU64(w, math.Float64bits(v.Float()))
	case reflect.String:
		writeTag(w, 's')
		writeString(w, v.String())
	case reflect.Slice:
		if v.IsNil() {
			writeTag(w, 'z')
			return
		}
		writeSequence(w, v)
	case reflect.Array:
		writeSequence(w, v)
	case reflect.Map:
		if v.IsNil() {
			writeTag(w, 'z')
			return
		}
		writeCanonicalMap(w, v)
	case reflect.Struct:
		writeTag(w, 't')
		writeString(w, v.Type().String())
		n := v.NumField()
		writeU64(w, uint64(n))
		for i := 0; i < n; i++ {
			writeString(w, v.Type().Field(i).Name)
			writeCanonical(w, v.Field(i))
		}
	case reflect.Ptr, reflect.Interface:
		if v.IsNil() {
			writeTag(w, 'z')
			return
		}
		writeTag(w, 'p')
		writeCanonical(w, v.Elem())
	default:
		// Channels, funcs, unsafe pointers: identity is not value-like;
		// hash the type name only so the digest stays total (a canister
		// returning one of these is a bug the tests catch, not a panic).
		writeTag(w, '?')
		writeString(w, v.Type().String())
	}
}

// writeSequence serializes a slice or array element by element, with a fast
// path for byte slices/arrays.
func writeSequence(w io.Writer, v reflect.Value) {
	if v.Type().Elem().Kind() == reflect.Uint8 {
		writeTag(w, 'y')
		writeU64(w, uint64(v.Len()))
		if v.Kind() == reflect.Slice {
			w.Write(v.Bytes())
			return
		}
		for i := 0; i < v.Len(); i++ {
			writeTag(w, byte(v.Index(i).Uint()))
		}
		return
	}
	writeTag(w, 'l')
	writeU64(w, uint64(v.Len()))
	for i := 0; i < v.Len(); i++ {
		writeCanonical(w, v.Index(i))
	}
}

// writeCanonicalMap serializes map entries sorted by their encoded key
// bytes — the step that makes map-valued results certify identically no
// matter the iteration order of the underlying table.
func writeCanonicalMap(w io.Writer, v reflect.Value) {
	type entry struct{ key, val []byte }
	entries := make([]entry, 0, v.Len())
	it := v.MapRange()
	for it.Next() {
		var kb, vb digestBuf
		writeCanonical(&kb, it.Key())
		writeCanonical(&vb, it.Value())
		entries = append(entries, entry{key: kb.b, val: vb.b})
	}
	sort.Slice(entries, func(i, j int) bool {
		return string(entries[i].key) < string(entries[j].key)
	})
	writeTag(w, 'm')
	writeU64(w, uint64(len(entries)))
	for _, e := range entries {
		w.Write(e.key)
		w.Write(e.val)
	}
}

// digestBuf is a minimal io.Writer over a byte slice (bytes.Buffer without
// the unused machinery).
type digestBuf struct{ b []byte }

func (d *digestBuf) Write(p []byte) (int, error) {
	d.b = append(d.b, p...)
	return len(p), nil
}
