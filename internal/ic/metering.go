package ic

// Instruction metering: the execution layer charges every canister
// operation against a deterministic cost model, standing in for the
// WebAssembly instruction counter of the production IC. The constants were
// originally calibrated so the headline figures land in the paper's ranges
// (block ingestion ≈ 20 B instructions for a full block, get_utxos between
// ~6 M and ~5·10⁸ instructions — Figures 6 and 7); the ordered address
// index and script interning recalibrate the affected constants downward to
// match the measured work of the indexed implementation, so the reproduced
// figures now sit deliberately *below* the paper's costs. The *shape* of
// every curve still comes from the canister algorithms, not the constants.

// Cost model constants, in "instructions".
const (
	// CostPerOutputInsert prices inserting one output whose locking script
	// is not yet interned: address decode + hash + index insert.
	CostPerOutputInsert = 4_000_000
	// CostPerOutputInsertInterned prices inserting one output whose script
	// the set has already seen: the decode/hash is a memo probe, leaving the
	// ordered-bucket insert and outpoint-map write.
	CostPerOutputInsertInterned = 2_600_000
	// CostPerInputRemove prices removing one spent input. Entries store
	// their derived address key, so a removal no longer re-derives the
	// ScriptID of the spent output's script (it used to cost 4 M).
	CostPerInputRemove = 3_000_000
	// CostPerTxOverhead prices per-transaction bookkeeping in ingestion.
	// Transaction IDs are memoized per block (computed when the block's
	// delta is built), so stable ingestion no longer re-serializes and
	// re-hashes every transaction.
	CostPerTxOverhead = 200_000
	// CostBlockOverhead prices per-block header/validation work.
	CostBlockOverhead = 30_000_000
	// CostRequestBase prices fixed request handling (decode, dispatch).
	CostRequestBase = 5_500_000
	// CostPerUTXOStable prices fetching one UTXO from the large stable set
	// via the naive path that copies and re-sorts a whole address bucket;
	// only the replay oracle still pays it.
	CostPerUTXOStable = 450_000
	// CostPerUTXOStableIndexed prices streaming one UTXO off the ordered
	// address index: the bucket is already canonically sorted, so a page is
	// a cursor seek plus a bounded copy.
	CostPerUTXOStableIndexed = 250_000
	// CostPerIndexSeek prices positioning a page cursor in the ordered
	// index (one binary search per request).
	CostPerIndexSeek = 50_000
	// CostPerUTXOUnstable prices fetching one UTXO from unstable blocks
	// (cheaper: "UTXOs in unstable blocks can be fetched more quickly",
	// the bifurcation in Fig 7 right).
	CostPerUTXOUnstable = 110_000
	// CostPerBalanceUTXO prices summing one UTXO for get_balance. Balances
	// are nearly flat-cost (the paper's ~35,000 requests per dollar imply a
	// request dominated by the fixed base).
	CostPerBalanceUTXO = 3_000
	// CostPerUnstableBlockScan prices walking one unstable block during an
	// address view — the linear-in-δ term of §III-C. Only the naive replay
	// read path (the differential oracle) pays it; the overlay read path
	// replaces it with the per-delta costs below.
	CostPerUnstableBlockScan = 200_000
	// CostPerDeltaLookup prices consulting one unstable block's
	// address-indexed delta during an overlay read: two map lookups instead
	// of a full block scan, so the δ-proportional term almost vanishes.
	CostPerDeltaLookup = 2_000
	// CostPerDeltaEntry prices applying one created/spent delta entry for
	// the queried address while merging the overlay view.
	CostPerDeltaEntry = 2_000
	// CostPerDeltaBuildTx prices indexing one transaction into a block's
	// delta at ingestion time — the one-time work that amortizes the
	// per-request block scans away.
	CostPerDeltaBuildTx = 60_000
	// CostBalanceCacheHit prices serving get_balance from the per-address
	// balance cache the overlay keeps coherent.
	CostBalanceCacheHit = 40_000
	// CostFeeCacheHit prices serving get_current_fee_percentiles from the
	// per-tip cache instead of rescanning every unstable block.
	CostFeeCacheHit = 60_000
	// CostThresholdSignature prices one threshold signing round.
	CostThresholdSignature = 26_000_000_000 / 1000 // per-canister share
	// CostInterCanisterCall prices call setup/teardown.
	CostInterCanisterCall = 1_000_000
	// CostPerHeaderValidation prices one block-header check.
	CostPerHeaderValidation = 500_000
)

// meterCategories caps the distinct categories one meter tracks. The
// codebase uses ~16 constant category strings; charges beyond the cap keep
// the total exact and fold their attribution into the last slot.
const meterCategories = 24

// catCount is one category's accumulated charge.
type catCount struct {
	name string
	n    uint64
}

// Meter accumulates instructions charged during one execution, broken down
// by category so experiments can attribute cost (Fig 6 right separates
// "insert outputs" from "remove inputs"). The breakdown lives in a fixed
// inline array rather than a map: the zero value is ready to use and
// charging never allocates, which keeps metered hot paths (a charge per
// returned UTXO) allocation-free.
type Meter struct {
	total uint64
	n     int
	cats  [meterCategories]catCount
}

// NewMeter creates an empty meter.
func NewMeter() *Meter { return &Meter{} }

// Charge adds n instructions under a category. Category strings should be
// constants: the common case is a pointer-equal string compare against a
// handful of live slots.
func (m *Meter) Charge(n uint64, category string) {
	m.total += n
	for i := 0; i < m.n; i++ {
		if m.cats[i].name == category {
			m.cats[i].n += n
			return
		}
	}
	if m.n < meterCategories {
		m.cats[m.n] = catCount{name: category, n: n}
		m.n++
		return
	}
	// Overflow: keep the total exact, fold attribution into the last slot.
	m.cats[meterCategories-1].n += n
}

// Total returns the instructions charged so far.
func (m *Meter) Total() uint64 { return m.total }

// Category returns the instructions charged under one category.
func (m *Meter) Category(c string) uint64 {
	for i := 0; i < m.n; i++ {
		if m.cats[i].name == c {
			return m.cats[i].n
		}
	}
	return 0
}

// Categories returns a copy of the per-category breakdown.
func (m *Meter) Categories() map[string]uint64 {
	out := make(map[string]uint64, m.n)
	for i := 0; i < m.n; i++ {
		out[m.cats[i].name] = m.cats[i].n
	}
	return out
}

// Reset clears the meter for reuse.
func (m *Meter) Reset() {
	*m = Meter{}
}

// CyclesPerInstruction converts instructions to cycles (the IC's fee unit).
// The production rate is 1 cycle per 10 instructions on application subnets;
// combined with CyclesPerUSD this reproduces the paper's "35,000 balance
// requests / 1,500 UTXO requests per dollar" arithmetic.
const CyclesPerInstruction = 0.4

// CyclesPerUSD is the (fixed) cycles-per-dollar rate: 1 USD buys ~7.3e11
// cycles at the SDR peg used in the paper's time frame.
const CyclesPerUSD = 7.3e11

// InstructionsToUSD converts an instruction count to U.S. dollars.
func InstructionsToUSD(instructions uint64) float64 {
	return float64(instructions) * CyclesPerInstruction / CyclesPerUSD
}
