package ic

import (
	"math/big"

	"icbtc/internal/secp256k1"
)

// Thin wrappers keeping the subnet code free of direct big.Int plumbing.

func parseSchnorr(sig []byte) (*secp256k1.SchnorrSignature, error) {
	return secp256k1.ParseSchnorrSignature(sig)
}

func verifySchnorr(sig *secp256k1.SchnorrSignature, msg []byte, px *big.Int) bool {
	return secp256k1.SchnorrVerify(sig, msg, px)
}

// xOnly extracts the x coordinate from a compressed public key.
func xOnly(compressed []byte) *big.Int {
	if len(compressed) != 33 {
		return new(big.Int)
	}
	return new(big.Int).SetBytes(compressed[1:])
}
