// Command icsim runs a standalone IC subnet simulation: a 3f+1 replica
// subnet with threshold keys, a demo canister, and a stream of replicated
// and query calls, reporting the round rate, block-maker fairness, and the
// latency distribution — the substrate half of the paper's architecture.
//
// Usage: icsim -n 13 -calls 50 -byzantine 2
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"icbtc/internal/ic"
	"icbtc/internal/obs"
	"icbtc/internal/simnet"
)

// demoCanister is a small stateful canister for the simulation.
type demoCanister struct{ value int }

func (d *demoCanister) Update(ctx *ic.CallContext, method string, arg any) (any, error) {
	ctx.Meter.Charge(1_000_000, "demo")
	if method == "add" {
		d.value += arg.(int)
	}
	return d.value, nil
}

func (d *demoCanister) Query(ctx *ic.CallContext, method string, arg any) (any, error) {
	ctx.Meter.Charge(500_000, "demo")
	return d.value, nil
}

func main() {
	n := flag.Int("n", 13, "subnet size (3f+1)")
	calls := flag.Int("calls", 50, "replicated calls to issue")
	byzantine := flag.Int("byzantine", 0, "byzantine replicas (must be < n/3)")
	seed := flag.Int64("seed", 1, "simulation seed")
	metrics := flag.String("metrics", "", "write the run's obs metrics (Prometheus text) to this file ('-' for stdout)")
	flag.Parse()
	if err := run(*n, *calls, *byzantine, *seed, *metrics); err != nil {
		fmt.Fprintln(os.Stderr, "icsim:", err)
		os.Exit(1)
	}
}

func run(n, calls, byzantine int, seed int64, metrics string) error {
	sched := simnet.NewScheduler(seed)
	cfg := ic.DefaultConfig()
	cfg.N = n
	cfg.Seed = seed
	subnet, err := ic.NewSubnet(sched, cfg)
	if err != nil {
		return err
	}
	for i := 0; i < byzantine && i < len(subnet.Replicas()); i++ {
		subnet.Replicas()[i].Byzantine = true
	}
	subnet.InstallCanister("demo", &demoCanister{})

	// Run-local registry on the scheduler's virtual clock: same seed,
	// same flags, bit-identical dump.
	reg := obs.NewRegistry()
	reg.SetClock(sched.Now)
	updates := reg.Counter("icsim_updates_total")
	queries := reg.Counter("icsim_queries_total")
	updateLatency := reg.Histogram("icsim_update_latency_ns", obs.DurationBuckets)
	rounds := reg.Counter("icsim_rounds_total")

	makerCounts := make(map[int]int)
	subnet.OnRound(func(_ int64, maker *ic.Replica) {
		rounds.Inc()
		makerCounts[maker.Index]++
	})
	subnet.Start()

	var latencies []time.Duration
	done := 0
	for i := 0; i < calls; i++ {
		i := i
		sched.After(time.Duration(i)*700*time.Millisecond, func() {
			subnet.SubmitUpdate("demo", "add", 1, "cli", func(r ic.Result) {
				updates.Inc()
				updateLatency.ObserveDuration(r.Latency)
				latencies = append(latencies, r.Latency)
				done++
			})
		})
	}
	deadline := sched.Now().Add(time.Duration(calls)*time.Second + 5*time.Minute)
	for done < calls && sched.Now().Before(deadline) {
		sched.RunFor(time.Second)
	}
	if done < calls {
		return fmt.Errorf("only %d/%d calls completed", done, calls)
	}

	ls := obs.SummarizeDurations(latencies)
	fmt.Printf("subnet n=%d f=%d, %d rounds, threshold key %x...\n",
		n, subnet.F(), subnet.Round(), subnet.Committee().PublicKey().SerializeCompressed()[:8])
	fmt.Printf("replicated calls: %d  min=%v avg=%v p90=%v max=%v\n",
		len(latencies),
		ls.Min.Round(time.Millisecond),
		ls.Mean.Round(time.Millisecond),
		ls.P90.Round(time.Millisecond),
		ls.Max.Round(time.Millisecond))

	// Block-maker fairness.
	min, max := 1<<30, 0
	for i := 0; i < n; i++ {
		c := makerCounts[i]
		if c < min {
			min = c
		}
		if c > max {
			max = c
		}
	}
	fmt.Printf("block maker selections per replica: min=%d max=%d (beacon-driven rotation)\n", min, max)

	// One query for comparison.
	var q ic.Result
	got := false
	subnet.Query("demo", "get", nil, "cli", func(r ic.Result) { q = r; got = true })
	for !got {
		sched.RunFor(100 * time.Millisecond)
	}
	queries.Inc()
	fmt.Printf("query latency: %v (vs replicated min %v)\n", q.Latency.Round(time.Millisecond), ls.Min.Round(time.Millisecond))

	if metrics != "" {
		w := os.Stdout
		if metrics != "-" {
			f, err := os.Create(metrics)
			if err != nil {
				return err
			}
			defer f.Close()
			w = f
		}
		if err := reg.Snapshot().WriteProm(w); err != nil {
			return err
		}
	}
	return nil
}
