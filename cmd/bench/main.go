// Command bench regenerates the paper's figures and in-text measurements.
//
// Usage:
//
//	bench -fig all          # everything (default)
//	bench -fig 3            # Figure 3 block-tree stability annotations
//	bench -fig 5            # Figure 5 UTXO/storage growth
//	bench -fig 6            # Figure 6 block ingestion cost
//	bench -fig 7            # Figure 7 latency + instructions vs #UTXOs
//	bench -fig latency      # §IV-B latency distribution
//	bench -fig cost         # §IV-B requests-per-dollar arithmetic
//	bench -fig eclipse      # Lemma IV.1 Monte Carlo
//	bench -fig downtime     # Lemma IV.3 Monte Carlo
//	bench -fig readpath     # overlay vs naive-replay read path at δ=144
//	bench -fig snapshot     # snapshot codec: size, encode/decode, fast-sync
//	bench -fig ingest       # serial vs pipelined block ingest + sharded hydration
//	bench -fig queryfleet   # read-replica fleet QPS/latency scaling 1→8
//	bench -fig fleetload    # open-loop Zipf load vs the serving layers (coalesce/cache/admission)
//	bench -fig chaos        # fault-scenario recovery (rounds to reconverge)
//	bench -fig degrade      # recovery vs adapter-link loss rate sweep
//	bench -fig ablations    # δ / τ / sync-mode ablations
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime/pprof"

	"icbtc/internal/btc"
	"icbtc/internal/chain"
	"icbtc/internal/experiments"
	"icbtc/internal/obs"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate (3, 5, 6, 7, latency, cost, eclipse, downtime, readpath, snapshot, ingest, queryfleet, fleetload, chaos, degrade, ablations, scaling, all)")
	seed := flag.Int64("seed", 7, "simulation seed")
	scale := flag.Int("scale", 10, "population scale divisor for Fig 7 / latency (1 = paper's full 1000 addresses)")
	trials := flag.Int("trials", 50_000, "Monte Carlo trials for the security lemmas")
	cpuprofile := flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
	metrics := flag.String("metrics", "", "write the run's obs metrics (Prometheus text) to this file ('-' for stdout)")
	obstrace := flag.String("obstrace", "", "write the fleetload passes' obs event traces to this file (enables tracing)")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if err := run(*fig, *seed, *scale, *trials, *metrics, *obstrace); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
}

// obsDump accumulates observability output across the figures that expose
// it: metric snapshots are merged into one Prometheus-text dump, event
// traces and pre-rendered texts are appended as labeled sections.
type obsDump struct {
	snaps  []*obs.Snapshot
	texts  []string // pre-rendered Prometheus sections (e.g. chaos runs)
	traces []string
}

func (d *obsDump) writeMetrics(path string) error {
	if path == "" || (len(d.snaps) == 0 && len(d.texts) == 0) {
		return nil
	}
	w := os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if len(d.snaps) > 0 {
		merged, err := obs.Merge(d.snaps...)
		if err != nil {
			return err
		}
		if err := merged.WriteProm(w); err != nil {
			return err
		}
	}
	for _, t := range d.texts {
		if _, err := fmt.Fprint(w, t); err != nil {
			return err
		}
	}
	return nil
}

func (d *obsDump) writeTraces(path string) error {
	if path == "" || len(d.traces) == 0 {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	for _, t := range d.traces {
		if _, err := fmt.Fprint(f, t); err != nil {
			return err
		}
	}
	return nil
}

func run(fig string, seed int64, scale, trials int, metrics, obstrace string) error {
	all := fig == "all"
	out := os.Stdout
	section := func(name string) { fmt.Fprintf(out, "\n===== %s =====\n", name) }
	var dump obsDump

	if all || fig == "3" {
		section("Figure 3")
		printFigure3(seed)
	}
	if all || fig == "5" {
		section("Figure 5")
		cfg := experiments.DefaultFig5Config()
		cfg.Seed = seed
		res, err := experiments.RunFig5(cfg)
		if err != nil {
			return err
		}
		res.Print(out)
	}
	if all || fig == "6" {
		section("Figure 6")
		cfg := experiments.DefaultFig6Config()
		cfg.Seed = seed
		res, err := experiments.RunFig6(cfg)
		if err != nil {
			return err
		}
		res.Print(out)
	}
	if all || fig == "7" {
		section("Figure 7")
		cfg := experiments.DefaultFig7Config()
		cfg.Seed = seed
		cfg.Scale = scale
		res, err := experiments.RunFig7(cfg)
		if err != nil {
			return err
		}
		res.Print(out)
	}
	if all || fig == "latency" {
		section("Latency distribution (§IV-B)")
		cfg := experiments.DefaultLatencyConfig()
		cfg.Seed = seed
		cfg.Scale = scale
		res, err := experiments.RunLatency(cfg)
		if err != nil {
			return err
		}
		res.Print(out)
	}
	if all || fig == "cost" {
		section("Request cost (§IV-B)")
		res, err := experiments.RunCost(seed)
		if err != nil {
			return err
		}
		res.Print(out)
	}
	if all || fig == "eclipse" {
		section("Lemma IV.1 (eclipse)")
		experiments.RunEclipse(trials, seed).Print(out)
	}
	if all || fig == "downtime" {
		section("Lemma IV.3 (downtime)")
		experiments.RunDowntime(trials, seed, 13).Print(out)
	}
	if all || fig == "scaling" {
		section("Extension: throughput scaling")
		sc, err := experiments.RunScaling(seed)
		if err != nil {
			return err
		}
		sc.Print(out)
	}
	if all || fig == "queryfleet" {
		section("Query fleet: certified read replicas")
		cfg := experiments.DefaultQueryFleetConfig()
		cfg.Seed = seed
		res, err := experiments.RunQueryFleet(cfg)
		if err != nil {
			return err
		}
		res.Print(out)
	}
	if all || fig == "fleetload" {
		section("Fleet load: serving layers under open-loop overload")
		cfg := experiments.DefaultFleetLoadConfig()
		cfg.Seed = seed
		cfg.TraceEvents = obstrace != ""
		res, err := experiments.RunFleetLoad(cfg)
		if err != nil {
			return err
		}
		res.Print(out)
		dump.snaps = append(dump.snaps, res.Baseline.Obs, res.Layered.Obs)
		for _, p := range []experiments.FleetLoadPass{res.Baseline, res.Layered} {
			if p.TraceText != "" {
				dump.traces = append(dump.traces, fmt.Sprintf("# pass %s\n%s", p.Name, p.TraceText))
			}
		}
	}
	if all || fig == "chaos" {
		section("Chaos: fault-scenario recovery")
		cfg := experiments.DefaultChaosConfig()
		cfg.Seed = seed
		res, err := experiments.RunChaos(cfg)
		if err != nil {
			return err
		}
		res.Print(out)
		if res.LastMetricsText != "" {
			dump.texts = append(dump.texts, "# chaos (last scenario)\n"+res.LastMetricsText)
		}
	}
	if all || fig == "degrade" {
		section("Degradation: recovery vs adapter-link loss rate")
		cfg := experiments.DefaultDegradeConfig()
		cfg.Seed = seed
		res, err := experiments.RunDegrade(cfg)
		if err != nil {
			return err
		}
		res.Print(out)
	}
	if all || fig == "snapshot" {
		section("Snapshot: upgrade & fast-sync")
		cfg := experiments.DefaultSnapshotConfig()
		cfg.Seed = seed
		res, err := experiments.RunSnapshot(cfg)
		if err != nil {
			return err
		}
		res.Print(out)
	}
	if all || fig == "ingest" {
		section("Ingest: serial vs parallel pipeline")
		cfg := experiments.DefaultIngestConfig()
		cfg.Seed = seed
		res, err := experiments.RunIngest(cfg)
		if err != nil {
			return err
		}
		res.Print(out)
	}
	if all || fig == "readpath" {
		section("Read path: overlay vs naive replay (δ=144)")
		cfg := experiments.DefaultReadPathConfig()
		cfg.Seed = seed
		res, err := experiments.RunReadPath(cfg)
		if err != nil {
			return err
		}
		res.Print(out)
	}
	if all || fig == "ablations" {
		section("Ablation: δ sweep")
		d, err := experiments.RunDeltaSweep(seed)
		if err != nil {
			return err
		}
		d.Print(out)
		section("Ablation: Algorithm 1 sync modes")
		s, err := experiments.RunSyncModes(seed)
		if err != nil {
			return err
		}
		s.Print(out)
		section("Ablation: τ sweep")
		tres, err := experiments.RunTauSweep(seed)
		if err != nil {
			return err
		}
		tres.Print(out)
	}
	if err := dump.writeMetrics(metrics); err != nil {
		return fmt.Errorf("writing metrics dump: %w", err)
	}
	if err := dump.writeTraces(obstrace); err != nil {
		return fmt.Errorf("writing obs trace: %w", err)
	}
	return nil
}

// printFigure3 rebuilds the Figure 3 block tree and prints each block's
// confirmation-based stability (see internal/chain's TestFigure3 for the
// topology reconstruction notes).
func printFigure3(seed int64) {
	params := btc.RegtestParams()
	tree := chain.NewTree(params.GenesisHeader, 0)
	bits := params.GenesisHeader.Bits
	mk := func(prev btc.Hash, nonce uint32) *chain.Node {
		h := btc.BlockHeader{
			Version:    1,
			PrevBlock:  prev,
			MerkleRoot: btc.DoubleSHA256([]byte{byte(nonce), byte(nonce >> 8)}),
			Timestamp:  1_600_000_000 + nonce,
			Bits:       bits,
			Nonce:      nonce,
		}
		n, err := tree.Insert(h)
		if err != nil {
			panic(err)
		}
		return n
	}
	main := make([]*chain.Node, 7)
	prev := tree.Root()
	for i := range main {
		main[i] = mk(prev.Hash, uint32(1000+i))
		prev = main[i]
	}
	forkA := make([]*chain.Node, 3)
	prev = main[1]
	for i := range forkA {
		forkA[i] = mk(prev.Hash, uint32(2000+i))
		prev = forkA[i]
	}
	forkB := make([]*chain.Node, 2)
	prev = main[3]
	for i := range forkB {
		forkB[i] = mk(prev.Hash, uint32(3000+i))
		prev = forkB[i]
	}
	fmt.Println("Figure 3: confirmation-based stability per block (heights h..h+6)")
	fmt.Print("main chain:  ")
	for _, n := range main {
		fmt.Printf("%3d ", tree.StabilityByCount(n))
	}
	fmt.Print("\nfork A:          ")
	for _, n := range forkA {
		fmt.Printf("%3d ", tree.StabilityByCount(n))
	}
	fmt.Print("\nfork B:                  ")
	for _, n := range forkB {
		fmt.Printf("%3d ", tree.StabilityByCount(n))
	}
	fmt.Println("\n(paper prints the fork rows as -2 -2 -2 and -1 -1; see EXPERIMENTS.md for the main-row note)")
	_ = seed
}
