// Command btcsim runs the standalone simulated Bitcoin network: it builds a
// population of honest full nodes (plus optional adversaries), mines a
// chain with real proof of work, pushes random payment traffic through the
// mempools, and reports convergence and per-node statistics.
//
// Usage: btcsim -nodes 12 -blocks 30 -txs 4 -adversaries 1
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"icbtc/internal/btc"
	"icbtc/internal/btcnode"
	"icbtc/internal/secp256k1"
	"icbtc/internal/simnet"
)

func main() {
	nodes := flag.Int("nodes", 12, "honest Bitcoin nodes")
	blocks := flag.Int("blocks", 30, "blocks to mine")
	txsPerBlock := flag.Int("txs", 4, "payment transactions per block")
	adversaries := flag.Int("adversaries", 0, "adversarial nodes to attach")
	seed := flag.Int64("seed", 1, "simulation seed")
	flag.Parse()
	if err := run(*nodes, *blocks, *txsPerBlock, *adversaries, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "btcsim:", err)
		os.Exit(1)
	}
}

func run(nodes, blocks, txsPerBlock, adversaries int, seed int64) error {
	sched := simnet.NewScheduler(seed)
	net := simnet.NewNetwork(sched)
	params := btc.RegtestParams()
	sim := btcnode.BuildHonestNetwork(net, params, nodes)
	if adversaries > 0 {
		sim.AddAdversaries(adversaries)
	}

	key, err := secp256k1.GeneratePrivateKey(rand.New(rand.NewSource(seed)))
	if err != nil {
		return err
	}
	miner := btcnode.NewMinerWithKey(sim.Nodes[0], key)
	minerAddr := btc.AddressFromPubKey(key.PubKey().SerializeCompressed(), params.Network)
	destKey, err := secp256k1.GeneratePrivateKey(rand.New(rand.NewSource(seed + 1)))
	if err != nil {
		return err
	}
	dest := btc.AddressFromPubKey(destKey.PubKey().SerializeCompressed(), params.Network)

	start := time.Now()
	accepted := 0
	for i := 0; i < blocks; i++ {
		// Payment traffic: spend miner coinbases to the destination.
		utxos := sim.Nodes[0].UTXOView().UTXOsForAddress(minerAddr.String())
		for t := 0; t < txsPerBlock && t < len(utxos); t++ {
			u := utxos[t]
			if u.Value < 2000 {
				continue
			}
			tx := &btc.Transaction{
				Version: 2,
				Inputs:  []btc.TxIn{{PreviousOutPoint: u.OutPoint, Sequence: 0xffffffff}},
				Outputs: []btc.TxOut{{Value: u.Value - 1000, PkScript: btc.PayToAddrScript(dest)}},
			}
			if err := btc.SignInput(tx, 0, u.PkScript, key); err != nil {
				return err
			}
			if sim.Nodes[0].AcceptTx(tx) {
				accepted++
			}
		}
		if _, err := miner.Mine(0); err != nil {
			return err
		}
		sched.RunFor(2 * time.Second)
	}
	height, err := sim.SyncAll(10_000_000)
	if err != nil {
		return err
	}

	fmt.Printf("mined %d blocks, network converged at height %d in %v wall clock\n",
		blocks, height, time.Since(start).Round(time.Millisecond))
	fmt.Printf("payment transactions accepted: %d\n", accepted)
	sent, delivered, dropped := net.Stats()
	fmt.Printf("simnet: %d sent, %d delivered, %d dropped\n", sent, delivered, dropped)
	fmt.Printf("%-8s %8s %8s %10s %8s\n", "node", "height", "utxos", "mempool", "reorgs")
	for _, n := range sim.Nodes {
		fmt.Printf("%-8s %8d %8d %10d %8d\n", n.ID, n.Height(), n.UTXOView().Len(), n.MempoolSize(), n.Reorgs())
	}
	fmt.Printf("destination balance: %d sat\n", sim.Nodes[0].UTXOView().Balance(dest.String()))
	return nil
}
