package main

import (
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: icbtc
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkGetUTXOs1000-8   	   24688	     48694 ns/op	       255.6 Minstr	   82736 B/op	       3 allocs/op
BenchmarkGetUTXOs1000-8   	   25000	     47102 ns/op	       255.6 Minstr	   82736 B/op	       3 allocs/op
BenchmarkUTXOSetApplyBlock 	     300	    108163 ns/op	     30000 utxos-final
BenchmarkSnapshotCodec/decode-8    	     700	   1590948 ns/op
PASS
`

func TestParseBenchOutput(t *testing.T) {
	got, err := parseBenchOutput(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	// Minimum across repeats, -N suffix stripped, sub-benchmarks kept.
	want := map[string]float64{
		"BenchmarkGetUTXOs1000":         47102,
		"BenchmarkUTXOSetApplyBlock":    108163,
		"BenchmarkSnapshotCodec/decode": 1590948,
	}
	if len(got) != len(want) {
		t.Fatalf("parsed %d benchmarks, want %d: %v", len(got), len(want), got)
	}
	for name, ns := range want {
		if got[name] != ns {
			t.Errorf("%s = %v, want %v", name, got[name], ns)
		}
	}
}

func TestGate(t *testing.T) {
	baseline := Baseline{NsPerOp: map[string]float64{
		"BenchmarkFast": 100,
		"BenchmarkSlow": 1000,
	}}
	// Within threshold: no problems.
	if p := gate(baseline, map[string]float64{"BenchmarkFast": 150, "BenchmarkSlow": 1900}, 2.0); len(p) != 0 {
		t.Fatalf("unexpected problems: %v", p)
	}
	// Regression past the threshold.
	p := gate(baseline, map[string]float64{"BenchmarkFast": 201, "BenchmarkSlow": 900}, 2.0)
	if len(p) != 1 || !strings.Contains(p[0], "BenchmarkFast") {
		t.Fatalf("want one BenchmarkFast problem, got %v", p)
	}
	// A baseline benchmark missing from the output fails the gate.
	p = gate(baseline, map[string]float64{"BenchmarkFast": 100}, 2.0)
	if len(p) != 1 || !strings.Contains(p[0], "BenchmarkSlow") {
		t.Fatalf("want one missing-benchmark problem, got %v", p)
	}
}

func TestGateThresholdOverride(t *testing.T) {
	baseline := Baseline{
		NsPerOp:    map[string]float64{"BenchmarkPinned": 1000, "BenchmarkLoose": 1000},
		Thresholds: map[string]float64{"BenchmarkPinned": 1.05},
	}
	// 4% over baseline passes the 1.05 override; 10% over fails it while
	// the non-overridden benchmark still enjoys the default 2.0.
	if p := gate(baseline, map[string]float64{"BenchmarkPinned": 1040, "BenchmarkLoose": 1900}, 2.0); len(p) != 0 {
		t.Fatalf("unexpected problems: %v", p)
	}
	p := gate(baseline, map[string]float64{"BenchmarkPinned": 1100, "BenchmarkLoose": 1900}, 2.0)
	if len(p) != 1 || !strings.Contains(p[0], "BenchmarkPinned") {
		t.Fatalf("want one BenchmarkPinned problem, got %v", p)
	}
	// An override naming an unknown benchmark is a config error, not a skip.
	bad := Baseline{
		NsPerOp:    map[string]float64{"BenchmarkFast": 100},
		Thresholds: map[string]float64{"BenchmarkTypo": 1.05},
	}
	p = gate(bad, map[string]float64{"BenchmarkFast": 100}, 2.0)
	if len(p) != 1 || !strings.Contains(p[0], "BenchmarkTypo") {
		t.Fatalf("want one stale-override problem, got %v", p)
	}
}
