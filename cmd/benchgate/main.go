// Command benchgate is the CI bench-regression gate: it parses `go test
// -bench` output from stdin, takes the best (minimum) ns/op per benchmark
// across repeated runs, and compares each against a checked-in baseline
// with a generous multiplier. A hot path that silently regresses past the
// threshold — the read-path and ingestion wins this repo's PRs measure —
// fails the build instead of rotting unnoticed.
//
// Usage:
//
//	go test -run '^$' -bench 'GetUTXOs1000$|UTXOSetApplyBlock$' -count=3 . |
//	    go run ./cmd/benchgate -baseline BENCH_BASELINE.json -threshold 2.0
//
// Every benchmark listed in the baseline must appear in the input (a
// renamed or deleted benchmark fails the gate rather than skipping it).
// Refreshing the baseline after an intentional change: run the benchmarks
// on the reference machine, put the observed ns/op into
// BENCH_BASELINE.json, and commit it together with the change.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Baseline is the checked-in reference file.
type Baseline struct {
	// Comment documents the refresh procedure inside the JSON itself.
	Comment string `json:"comment"`
	// NsPerOp maps benchmark name (no -cpu suffix) to reference ns/op.
	NsPerOp map[string]float64 `json:"ns_per_op"`
	// Thresholds overrides the -threshold multiplier per benchmark, for
	// hot paths gated tighter than the generous default (e.g. 1.05 pins a
	// <5% regression budget on BenchmarkFleetLoad).
	Thresholds map[string]float64 `json:"thresholds"`
}

func main() {
	baselinePath := flag.String("baseline", "BENCH_BASELINE.json", "baseline JSON file")
	threshold := flag.Float64("threshold", 2.0, "fail when measured ns/op exceeds baseline×threshold")
	flag.Parse()

	raw, err := os.ReadFile(*baselinePath)
	if err != nil {
		fatal("reading baseline: %v", err)
	}
	var base Baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		fatal("parsing baseline: %v", err)
	}
	if len(base.NsPerOp) == 0 {
		fatal("baseline %s lists no benchmarks", *baselinePath)
	}

	results, err := parseBenchOutput(os.Stdin)
	if err != nil {
		fatal("parsing bench output: %v", err)
	}
	problems := gate(base, results, *threshold)
	names := make([]string, 0, len(base.NsPerOp))
	for name := range base.NsPerOp {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if got, ok := results[name]; ok {
			fmt.Printf("%-40s %12.0f ns/op  baseline %12.0f  (%.2fx)\n",
				name, got, base.NsPerOp[name], got/base.NsPerOp[name])
		}
	}
	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, "benchgate: FAIL:", p)
		}
		os.Exit(1)
	}
	fmt.Println("benchgate: all benchmarks within threshold")
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchgate: "+format+"\n", args...)
	os.Exit(1)
}

// parseBenchOutput extracts the minimum ns/op per benchmark from `go test
// -bench` output. Lines look like
//
//	BenchmarkGetUTXOs1000-8   	   24688	     48694 ns/op	 255.6 Minstr ...
//
// The -8 GOMAXPROCS suffix is stripped; repeated lines (-count) keep the
// fastest run, the standard way to suppress scheduler noise.
func parseBenchOutput(r io.Reader) (map[string]float64, error) {
	results := make(map[string]float64)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		// Find the "ns/op" unit and take the number before it.
		nsPerOp := -1.0
		for i := 2; i < len(fields); i++ {
			if fields[i] == "ns/op" {
				v, err := strconv.ParseFloat(fields[i-1], 64)
				if err != nil {
					return nil, fmt.Errorf("bad ns/op value in %q", sc.Text())
				}
				nsPerOp = v
				break
			}
		}
		if nsPerOp < 0 {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		if prev, ok := results[name]; !ok || nsPerOp < prev {
			results[name] = nsPerOp
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return results, nil
}

// gate returns one problem string per baseline benchmark that is missing
// from the results or regressed past baseline×threshold. A per-benchmark
// entry in the baseline's "thresholds" map overrides the default.
func gate(base Baseline, results map[string]float64, threshold float64) []string {
	var problems []string
	names := make([]string, 0, len(base.NsPerOp))
	for name := range base.NsPerOp {
		names = append(names, name)
	}
	sort.Strings(names)
	for name := range base.Thresholds {
		if _, ok := base.NsPerOp[name]; !ok {
			problems = append(problems,
				fmt.Sprintf("%s: threshold override without a ns_per_op baseline entry", name))
		}
	}
	for _, name := range names {
		want := base.NsPerOp[name]
		limit := threshold
		if t, ok := base.Thresholds[name]; ok {
			limit = t
		}
		got, ok := results[name]
		switch {
		case !ok:
			problems = append(problems,
				fmt.Sprintf("%s: not found in bench output (renamed or deleted?)", name))
		case want <= 0:
			problems = append(problems,
				fmt.Sprintf("%s: baseline %v is not positive", name, want))
		case limit <= 0:
			problems = append(problems,
				fmt.Sprintf("%s: threshold %v is not positive", name, limit))
		case got > want*limit:
			problems = append(problems,
				fmt.Sprintf("%s: %.0f ns/op exceeds baseline %.0f × %.2g = %.0f",
					name, got, want, limit, want*limit))
		}
	}
	sort.Strings(problems)
	return problems
}
