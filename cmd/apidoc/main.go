// Command apidoc prints the canister API reference table generated from the
// typed method registry (internal/canister/registry.go). Paste its output
// under README.md's "API reference" heading; the canister package's
// TestAPIReferenceInREADME fails whenever the README copy drifts from the
// registry.
package main

import (
	"fmt"

	"icbtc/internal/canister"
)

func main() {
	fmt.Print(canister.APIReferenceMarkdown())
}
