// Command btccli stands up the full integration (Bitcoin network + IC
// subnet + adapters + Bitcoin canister), seeds it with a mined chain, and
// executes one API call against the Bitcoin canister — a command-line
// smoke-test of the public interface.
//
// Usage:
//
//	btccli -op balance                 # miner address balance
//	btccli -op utxos                   # miner address UTXOs (first page)
//	btccli -op send                    # spend a coinbase and confirm it
//	btccli -op status                  # canister state summary
//	btccli -op balance -replicated     # certified call instead of query
//	btccli -op balance -addr <address> # explicit address
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"icbtc/internal/btc"
	"icbtc/internal/canister"
	"icbtc/internal/core"
	"icbtc/internal/ic"
)

func main() {
	op := flag.String("op", "status", "operation: balance | utxos | send | status")
	addr := flag.String("addr", "", "address (default: the miner's)")
	blocks := flag.Int("blocks", 8, "blocks to seed the chain with")
	replicated := flag.Bool("replicated", false, "use a replicated (certified) call")
	minConf := flag.Int64("confirmations", 0, "minimum confirmations filter")
	seed := flag.Int64("seed", 3, "simulation seed")
	flag.Parse()
	if err := run(*op, *addr, *blocks, *minConf, *replicated, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "btccli:", err)
		os.Exit(1)
	}
}

func run(op, addr string, blocks int, minConf int64, replicated bool, seed int64) error {
	subCfg := ic.DefaultConfig()
	subCfg.DisableThresholdKeys = true
	integ, err := core.New(core.Options{Seed: seed, Subnet: &subCfg})
	if err != nil {
		return err
	}
	integ.Start()
	integ.RunFor(5 * time.Second)
	if _, err := integ.MineBlocks(blocks); err != nil {
		return err
	}
	if err := integ.AwaitCanisterHeight(int64(blocks), 5*time.Minute); err != nil {
		return err
	}
	if addr == "" {
		addr = integ.MinerAddress().String()
	}

	switch op {
	case "status":
		fmt.Printf("network:        %v\n", integ.Params.Network)
		fmt.Printf("chain height:   %d\n", integ.Bitcoin.Nodes[0].Height())
		fmt.Printf("canister tip:   %d\n", integ.Canister.TipHeight())
		fmt.Printf("anchor height:  %d (δ-stable)\n", integ.Canister.AnchorHeight())
		fmt.Printf("stable UTXOs:   %d (%.1f KiB)\n", integ.Canister.StableUTXOCount(),
			float64(integ.Canister.StableStorageBytes())/1024)
		fmt.Printf("unstable blocks:%d\n", integ.Canister.UnstableBlockCount())
		fmt.Printf("synced:         %v\n", integ.Canister.Synced())
	case "balance":
		bal, res, err := integ.GetBalance(addr, minConf, replicated)
		if err != nil {
			return err
		}
		fmt.Printf("balance(%s) = %d sat\n", addr, bal)
		fmt.Printf("latency %v, %d instructions, certified=%v\n", res.Latency.Round(time.Millisecond), res.Instructions, res.Certified)
	case "utxos":
		res, env, err := integ.GetUTXOs(canister.GetUTXOsArgs{Address: addr, MinConfirmations: minConf}, replicated)
		if err != nil {
			return err
		}
		fmt.Printf("utxos(%s): %d returned (tip %s at height %d)\n", addr, len(res.UTXOs), res.TipHash, res.TipHeight)
		for i, u := range res.UTXOs {
			if i >= 10 {
				fmt.Printf("  ... %d more\n", len(res.UTXOs)-10)
				break
			}
			fmt.Printf("  %s  %12d sat  height %d\n", u.OutPoint, u.Value, u.Height)
		}
		fmt.Printf("latency %v, %d instructions\n", env.Latency.Round(time.Millisecond), env.Instructions)
	case "send":
		node := integ.Bitcoin.Nodes[0]
		utxos := node.UTXOView().UTXOsForAddress(integ.MinerAddress().String())
		if len(utxos) == 0 {
			return fmt.Errorf("miner has no UTXOs")
		}
		dest := btc.NewP2PKHAddress([20]byte{0xC1}, integ.Params.Network)
		tx := &btc.Transaction{
			Version: 2,
			Inputs:  []btc.TxIn{{PreviousOutPoint: utxos[0].OutPoint, Sequence: 0xffffffff}},
			Outputs: []btc.TxOut{{Value: utxos[0].Value - 1000, PkScript: btc.PayToAddrScript(dest)}},
		}
		if err := btc.SignInput(tx, 0, utxos[0].PkScript, integ.MinerKey()); err != nil {
			return err
		}
		if _, err := integ.SendTransaction(tx.Bytes()); err != nil {
			return err
		}
		fmt.Printf("submitted %s\n", tx.TxID())
		if err := integ.AwaitTxInMempool(tx.TxID(), 3*time.Minute); err != nil {
			return err
		}
		if _, err := integ.MineBlocks(1); err != nil {
			return err
		}
		if err := integ.AwaitCanisterHeight(int64(blocks)+1, 3*time.Minute); err != nil {
			return err
		}
		bal, _, err := integ.GetBalance(dest.String(), 0, false)
		if err != nil {
			return err
		}
		fmt.Printf("confirmed: destination %s holds %d sat\n", dest, bal)
	default:
		return fmt.Errorf("unknown op %q", op)
	}
	return nil
}
