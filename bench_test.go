// Package icbtc's top-level benchmarks regenerate the paper's evaluation
// (one testing.B benchmark per figure/measurement) and additionally bench
// the hot paths of every substrate. Run with:
//
//	go test -bench=. -benchmem
//
// The Benchmark*Figure* entries report custom metrics (instructions,
// simulated latency) next to wall-clock numbers; EXPERIMENTS.md records a
// full paper-vs-measured comparison.
package icbtc_test

import (
	"crypto/sha256"
	"math/rand"
	"testing"
	"time"

	"icbtc/internal/adapter"
	"icbtc/internal/btc"
	"icbtc/internal/canister"
	"icbtc/internal/experiments"
	"icbtc/internal/ic"
	"icbtc/internal/ingest"
	"icbtc/internal/obs"
	"icbtc/internal/queryfleet"
	"icbtc/internal/secp256k1"
	"icbtc/internal/simnet"
	"icbtc/internal/tecdsa"
	"icbtc/internal/utxo"
)

// --- Figure benches ---

// BenchmarkFig5UTXOGrowth regenerates Figure 5 (UTXO + storage growth).
func BenchmarkFig5UTXOGrowth(b *testing.B) {
	cfg := experiments.DefaultFig5Config()
	cfg.Weeks = 26 // one quarter per iteration keeps -bench runs short
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig5(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last := res.Rows[len(res.Rows)-1]
		b.ReportMetric(float64(last.UTXOCount), "utxos")
		b.ReportMetric(float64(last.StorageBytes)/(1<<20), "MiB")
	}
}

// BenchmarkFig6BlockIngestion regenerates Figure 6 (ingestion cost).
func BenchmarkFig6BlockIngestion(b *testing.B) {
	cfg := experiments.DefaultFig6Config()
	cfg.Days = 30
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig6(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.AvgInstructions)/1e9, "Binstr/block")
		ins, rem := res.SplitFractions()
		b.ReportMetric(ins*100, "insert%")
		b.ReportMetric(rem*100, "remove%")
	}
}

// BenchmarkFig7GetUTXOs regenerates Figure 7 (latency + instructions vs
// UTXO count).
func BenchmarkFig7GetUTXOs(b *testing.B) {
	cfg := experiments.DefaultFig7Config()
	cfg.Scale = 25
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig7(cfg)
		if err != nil {
			b.Fatal(err)
		}
		// Report the largest bucket's numbers as the headline metrics.
		last := res.Rows[len(res.Rows)-1]
		b.ReportMetric(last.UTXOsQuery.Seconds(), "query-s")
		b.ReportMetric(last.UTXOsReplicated.Seconds(), "replicated-s")
		b.ReportMetric(float64(last.UTXOsInstructions)/1e6, "Minstr")
	}
}

// BenchmarkLatencyDistribution regenerates the §IV-B latency numbers.
func BenchmarkLatencyDistribution(b *testing.B) {
	cfg := experiments.DefaultLatencyConfig()
	cfg.Scale = 50
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunLatency(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.ReplicatedMin.Seconds(), "repl-min-s")
		b.ReportMetric(res.ReplicatedAvg.Seconds(), "repl-avg-s")
		b.ReportMetric(res.ReplicatedP90.Seconds(), "repl-p90-s")
		b.ReportMetric(float64(res.QueryBalanceMedian.Milliseconds()), "qbal-med-ms")
	}
}

// BenchmarkCostPerRequest regenerates the requests-per-dollar arithmetic.
func BenchmarkCostPerRequest(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunCost(7)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.BalancePerUSD, "balance/USD")
		b.ReportMetric(res.UTXOsPerUSD, "utxos/USD")
	}
}

// BenchmarkEclipseMonteCarlo regenerates the Lemma IV.1 table.
func BenchmarkEclipseMonteCarlo(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.RunEclipse(20_000, 11)
		b.ReportMetric(res.Rows[len(res.Rows)-1].PAdapterMC, "p-eclipse")
	}
}

// BenchmarkDowntimeMonteCarlo regenerates the Lemma IV.3 sweep.
func BenchmarkDowntimeMonteCarlo(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.RunDowntime(50_000, 13, 13)
		b.ReportMetric(res.Rows[1].SuccessMC, "p-success-c2")
	}
}

// BenchmarkDegradeRecovery runs the lossy-link recovery experiment at a
// single mid-ladder loss rate (the full sweep is `bench -fig degrade`):
// the chaos harness under 25% adapter-link loss, reporting rounds to
// reconverge after heal. Gated by cmd/benchgate against BENCH_BASELINE.json
// — a regression here means the retry/backoff/stall machinery got slower at
// digging the sync out of a degraded uplink.
func BenchmarkDegradeRecovery(b *testing.B) {
	cfg := experiments.DegradeConfig{Seed: 7, Runs: 1, LossRates: []float64{0.25}, Rounds: 32}
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunDegrade(cfg)
		if err != nil {
			b.Fatal(err)
		}
		row := res.Rows[0]
		if !row.OracleIdentical {
			b.Fatalf("degraded run diverged from the oracle: %+v", row)
		}
		b.ReportMetric(row.RecoveryAvg, "recovery-rounds")
	}
}

// BenchmarkScalingThroughput regenerates the throughput-scaling extension.
func BenchmarkScalingThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunScaling(7)
		if err != nil {
			b.Fatal(err)
		}
		last := res.Rows[len(res.Rows)-1]
		b.ReportMetric(float64(last.CompletedCalls), "calls-4subnets")
	}
}

// BenchmarkAblationDeltaSweep regenerates the δ trade-off table.
func BenchmarkAblationDeltaSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunDeltaSweep(7)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Rows[len(res.Rows)-1].GetUTXOsInstructions)/1e6, "Minstr-d144")
	}
}

// BenchmarkAblationSyncModes regenerates the single/multi block ablation.
func BenchmarkAblationSyncModes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunSyncModes(7)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Rows[0].RequestRounds), "rounds-single")
		b.ReportMetric(float64(res.Rows[1].RequestRounds), "rounds-multi")
	}
}

// BenchmarkReadPathDeepUnstable runs the read-path scenario (δ=144, skewed
// addresses): the overlay must beat the naive-replay oracle by ≥5× and stay
// flat in unstable depth while the oracle grows linearly.
func BenchmarkReadPathDeepUnstable(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunReadPath(experiments.DefaultReadPathConfig())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.BalanceSpeedupAtFullDepth(), "bal-speedup-x")
		b.ReportMetric(res.UTXOsWallSpeedupAtFullDepth(), "utxo-wall-x")
		b.ReportMetric(float64(res.Rows[0].BalanceOverlay)/1e6, "bal-ovl-Minstr")
		b.ReportMetric(float64(res.Rows[0].BalanceOracle)/1e6, "bal-oracle-Minstr")
	}
}

// BenchmarkSnapshotFastSync runs the snapshot scenario at reduced scale:
// encode/decode wall time, snapshot size, and the fast-sync-vs-replay
// speedup (the full ≥100k-UTXO run is `bench -fig snapshot`).
func BenchmarkSnapshotFastSync(b *testing.B) {
	cfg := experiments.SnapshotConfig{
		Seed: 7, Blocks: 40, TxsPerBlock: 150, OutputsPerTx: 3,
		SpendEvery: 6, Addresses: 32, Delta: 6,
	}
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunSnapshot(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.FastSyncSpeedup, "fastsync-x")
		b.ReportMetric(res.BytesPerUTXO, "B/utxo")
		b.ReportMetric(float64(res.DecodeTime.Microseconds()), "decode-us")
		b.ReportMetric(float64(res.EncodeTime.Microseconds()), "encode-us")
	}
}

// BenchmarkSnapshotCodec microbenches the codec itself — one encode and one
// decode of a canister holding a deep stable set — isolated from history
// building and replay.
func BenchmarkSnapshotCodec(b *testing.B) {
	f := experiments.NewFeeder(btc.Regtest, 6, 9)
	script := btc.PayToAddrScript(btc.NewP2PKHAddress([20]byte{0x51}, btc.Regtest))
	for i := 0; i < 10; i++ {
		if _, err := f.FeedBlock([]experiments.TxSpec{{Outputs: experiments.PayN(script, 1000, 546)}}); err != nil {
			b.Fatal(err)
		}
	}
	if err := f.FeedEmpty(8); err != nil {
		b.Fatal(err)
	}
	snap, err := f.Canister.Snapshot()
	if err != nil {
		b.Fatal(err)
	}
	utxos := float64(f.Canister.StableUTXOCount())
	b.Run("encode", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := f.Canister.Snapshot(); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(len(snap))/utxos, "B/utxo")
	})
	b.Run("decode", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := canister.RestoreSnapshot(snap); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// ingestBenchWire builds a mainnet-shaped wire batch once per process.
var ingestBenchWire = func() [][]byte {
	rng := rand.New(rand.NewSource(7))
	scripts := make([][]byte, 32)
	for i := range scripts {
		var h [20]byte
		rng.Read(h[:])
		scripts[i] = btc.PayToAddrScript(btc.NewP2PKHAddress(h, btc.Regtest))
	}
	builder := experiments.NewBlockBuilder(btc.RegtestParams(), 7)
	wire := make([][]byte, 0, 30)
	for i := 0; i < 30; i++ {
		specs := make([]experiments.TxSpec, 0, 200)
		for t := 0; t < 200; t++ {
			spec := experiments.TxSpec{Outputs: experiments.PayN(scripts[rng.Intn(len(scripts))], 2, 546+int64(t%9))}
			if t%6 == 5 {
				spec.Inputs = 1
			}
			specs = append(specs, spec)
		}
		block, err := builder.NextBlock(specs)
		if err != nil {
			panic(err)
		}
		wire = append(wire, block.Bytes())
	}
	return wire
}()

// BenchmarkIngestSerial is the serial oracle leg: per-block ParseBlock +
// ProcessPayload over a 30-block mainnet-shaped batch (~6k transactions).
func BenchmarkIngestSerial(b *testing.B) {
	cfg := canister.DefaultConfig(btc.Regtest)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c := canister.New(cfg)
		now := time.Unix(1_700_000_000, 0).UTC()
		for _, w := range ingestBenchWire {
			blk, err := btc.ParseBlock(w)
			if err != nil {
				b.Fatal(err)
			}
			now = now.Add(time.Second)
			if err := c.ProcessPayload(ic.NewCallContext(ic.KindUpdate, now), adapterResponse(blk)); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(float64(len(ingestBenchWire))*float64(b.N)/b.Elapsed().Seconds(), "blocks/s")
}

// BenchmarkIngestPipeline ingests the identical batch through SyncWire at
// GOMAXPROCS-bounded workers — the parallel deterministic pipeline. Gated
// by cmd/benchgate against BENCH_BASELINE.json.
func BenchmarkIngestPipeline(b *testing.B) {
	cfg := canister.DefaultConfig(btc.Regtest)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c := canister.New(cfg)
		now := time.Unix(1_700_000_000, 0).UTC()
		stats, err := c.SyncWire(ic.NewCallContext(ic.KindUpdate, now), ingestBenchWire, ingest.Config{Workers: ingest.DefaultWorkers()})
		if err != nil {
			b.Fatal(err)
		}
		if stats.Accepted != len(ingestBenchWire) {
			b.Fatalf("accepted %d of %d", stats.Accepted, len(ingestBenchWire))
		}
	}
	b.ReportMetric(float64(len(ingestBenchWire))*float64(b.N)/b.Elapsed().Seconds(), "blocks/s")
}

// BenchmarkGetBalanceOverlayVsReplay microbenches one get_balance against a
// mainnet-deep unstable chain on each read path.
func BenchmarkGetBalanceOverlayVsReplay(b *testing.B) {
	for _, rp := range []struct {
		name string
		path canister.ReadPath
	}{{"overlay", canister.ReadPathOverlay}, {"replay", canister.ReadPathReplay}} {
		b.Run(rp.name, func(b *testing.B) {
			cfg := canister.DefaultConfig(btc.Regtest)
			cfg.StabilityThreshold = 144
			cfg.ReadPath = rp.path
			can := canister.New(cfg)
			builder := experiments.NewBlockBuilder(btc.RegtestParams(), 11)
			var h [20]byte
			h[0] = 0x77
			addr := btc.NewP2PKHAddress(h, btc.Regtest)
			script := btc.PayToAddrScript(addr)
			now := time.Unix(1_700_000_000, 0).UTC()
			for i := 0; i < 150; i++ {
				blk, err := builder.NextBlock([]experiments.TxSpec{{Outputs: experiments.PayN(script, 2, 546)}})
				if err != nil {
					b.Fatal(err)
				}
				now = now.Add(time.Minute)
				ctx := &ic.CallContext{Meter: ic.NewMeter(), Time: now, Kind: ic.KindUpdate}
				if err := can.ProcessPayload(ctx, adapterResponse(blk)); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				// An update context bypasses the balance cache, so each
				// iteration measures the full view merge (or replay).
				ctx := &ic.CallContext{Meter: ic.NewMeter(), Time: now, Kind: ic.KindUpdate}
				if _, err := can.GetBalance(ctx, canister.GetBalanceArgs{Address: addr.String()}); err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(float64(ctx.Meter.Total())/1e6, "Minstr")
				}
			}
		})
	}
}

func adapterResponse(blk *btc.Block) adapter.Response {
	return adapter.Response{Blocks: []adapter.BlockWithHeader{{Block: blk, Header: blk.Header}}}
}

// --- Substrate hot-path benches ---

func BenchmarkDoubleSHA256(b *testing.B) {
	data := make([]byte, 256)
	b.SetBytes(int64(len(data)))
	for i := 0; i < b.N; i++ {
		_ = btc.DoubleSHA256(data)
	}
}

func BenchmarkTransactionSerialize(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	tx := benchTx(rng, 2, 2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = tx.Bytes()
	}
}

func BenchmarkTransactionParse(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	raw := benchTx(rng, 2, 2).Bytes()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := btc.ParseTransaction(raw); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMerkleRoot1000(b *testing.B) {
	hashes := make([]btc.Hash, 1000)
	rng := rand.New(rand.NewSource(3))
	for i := range hashes {
		rng.Read(hashes[i][:])
	}
	for i := 0; i < b.N; i++ {
		_ = btc.MerkleRootFromHashes(hashes)
	}
}

func BenchmarkECDSASign(b *testing.B) {
	key, _ := secp256k1.GeneratePrivateKey(rand.New(rand.NewSource(4)))
	digest := sha256.Sum256([]byte("bench"))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := key.Sign(digest[:]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkECDSAVerify(b *testing.B) {
	key, _ := secp256k1.GeneratePrivateKey(rand.New(rand.NewSource(5)))
	digest := sha256.Sum256([]byte("bench"))
	sig, _ := key.Sign(digest[:])
	pub := key.PubKey()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !sig.Verify(digest[:], pub) {
			b.Fatal("invalid")
		}
	}
}

func BenchmarkThresholdECDSASign13of5(b *testing.B) {
	// n=13, t=4: the paper's subnet parameters.
	committee, err := tecdsa.NewCommittee(13, 4, rand.New(rand.NewSource(6)))
	if err != nil {
		b.Fatal(err)
	}
	digest := sha256.Sum256([]byte("bench"))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := committee.Sign(digest[:]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUTXOSetApplyBlock(b *testing.B) {
	script := btc.PayToPubKeyHashScript([20]byte{9})
	blocks := make([]*btc.Block, 0, b.N)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < b.N; i++ {
		blk := &btc.Block{Transactions: []*btc.Transaction{{
			Inputs: []btc.TxIn{{
				PreviousOutPoint: btc.OutPoint{TxID: btc.ZeroHash, Vout: 0xffffffff},
				SignatureScript:  []byte{byte(i), byte(i >> 8), byte(i >> 16), byte(i >> 24), byte(rng.Intn(256))},
			}},
			Outputs: experimentsPayN(script, 100),
		}}}
		blocks = append(blocks, blk)
	}
	set := utxo.New(btc.Regtest)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := set.ApplyBlock(blocks[i], int64(i+1)); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(set.Len()), "utxos-final")
}

// BenchmarkUTXOSetApplyBlockBatched stresses the staged batched apply the
// way real blocks do: many transactions paying a handful of addresses, so
// each address bucket receives a batch of same-height entries with
// scattered txids — one ordered merge per bucket instead of a binary
// insert (plus memmove) per entry. Gated by cmd/benchgate.
func BenchmarkUTXOSetApplyBlockBatched(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	scripts := make([][]byte, 4)
	for i := range scripts {
		var h [20]byte
		rng.Read(h[:])
		scripts[i] = btc.PayToPubKeyHashScript(h)
	}
	blocks := make([]*btc.Block, 0, b.N)
	for i := 0; i < b.N; i++ {
		blk := &btc.Block{}
		for t := 0; t < 50; t++ {
			tx := &btc.Transaction{Version: 2, Inputs: []btc.TxIn{{
				PreviousOutPoint: btc.OutPoint{TxID: btc.ZeroHash, Vout: 0xffffffff},
				SignatureScript:  []byte{byte(i), byte(i >> 8), byte(i >> 16), byte(t), byte(rng.Intn(256))},
			}}}
			for o := 0; o < 4; o++ {
				tx.Outputs = append(tx.Outputs, btc.TxOut{Value: 546, PkScript: scripts[(t+o)%len(scripts)]})
			}
			blk.Transactions = append(blk.Transactions, tx)
		}
		blocks = append(blocks, blk)
	}
	set := utxo.New(btc.Regtest)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := set.ApplyBlock(blocks[i], int64(i+1)); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(set.Len()), "utxos-final")
}

func experimentsPayN(script []byte, n int) []btc.TxOut {
	outs := make([]btc.TxOut, n)
	for i := range outs {
		outs[i] = btc.TxOut{Value: 546, PkScript: script}
	}
	return outs
}

func BenchmarkGetUTXOs1000(b *testing.B) {
	// A single get_utxos against an address with 1000 stable UTXOs — the
	// paper's most expensive request class.
	f := experiments.NewFeeder(btc.Regtest, 6, 9)
	var h [20]byte
	h[0] = 0x42
	addr := btc.NewP2PKHAddress(h, btc.Regtest)
	script := btc.PayToAddrScript(addr)
	if _, err := f.FeedBlock([]experiments.TxSpec{{Outputs: experiments.PayN(script, 1000, 546)}}); err != nil {
		b.Fatal(err)
	}
	if err := f.FeedEmpty(8); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ctx := f.QueryCtx()
		res, err := f.Canister.GetUTXOs(ctx, canister.GetUTXOsArgs{Address: addr.String()})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.UTXOs) != 1000 {
			b.Fatalf("got %d UTXOs", len(res.UTXOs))
		}
		if i == 0 {
			b.ReportMetric(float64(ctx.Meter.Total())/1e6, "Minstr")
		}
	}
}

// BenchmarkQueryFleetQuery is the fleet serving path itself — routing, the
// replica's read-locked execution, and the staleness check — on a hydrated
// single-replica fleet with the execution-time model off, so the number is
// pure serving overhead over the underlying canister query. Each op is a
// batch of 100 routed queries (~65µs), so the CI gate's -benchtime=300x
// measures a multi-millisecond window comparable to the other gated
// benchmarks instead of a scheduler-noise-sized one. Gated by
// cmd/benchgate against BENCH_BASELINE.json.
func BenchmarkQueryFleetQuery(b *testing.B) {
	f := experiments.NewFeeder(btc.Regtest, 6, 10)
	var h [20]byte
	h[0] = 0x47
	addr := btc.NewP2PKHAddress(h, btc.Regtest)
	script := btc.PayToAddrScript(addr)
	for i := 0; i < 10; i++ {
		if _, err := f.FeedBlock([]experiments.TxSpec{{Outputs: experiments.PayN(script, 20, 546)}}); err != nil {
			b.Fatal(err)
		}
	}
	fleet, err := queryfleet.New(f.Canister, queryfleet.Config{Replicas: 1, MaxLagBlocks: -1})
	if err != nil {
		b.Fatal(err)
	}
	defer fleet.Close()
	args := canister.GetBalanceArgs{Address: addr.String()}
	now := time.Unix(1_700_100_000, 0).UTC()
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for q := 0; q < 100; q++ {
			rq := fleet.RouteQuery("get_balance", args, "bench", now)
			if rq.Err != nil {
				b.Fatal(rq.Err)
			}
		}
	}
}

// BenchmarkFleetLoad runs a scaled-down open-loop Zipf load comparison per
// op — baseline fleet vs the full serving stack (coalesce, hot cache,
// admission) at equal replicas — reporting the aggregate QPS speedup,
// cache-hit rate, and layered p99. The wall time per op is dominated by the
// modeled execution sleeps (deterministic across machines), so the ns/op is
// gated by cmd/benchgate against BENCH_BASELINE.json: a regression means
// the serving layers stopped absorbing the overload. The full-size run is
// `bench -fig fleetload`.
func BenchmarkFleetLoad(b *testing.B) {
	cfg := experiments.FleetLoadConfig{
		Seed:         7,
		Replicas:     2,
		Requests:     240,
		OfferedQPS:   400,
		Addresses:    32,
		ZipfS:        1.5,
		Blocks:       10,
		ExecRate:     2e8,
		PageLimit:    8,
		SlowEvery:    40,
		SlowLimit:    40,
		BurstEvery:   60,
		BurstLen:     10,
		TipMoveEvery: 250 * time.Millisecond,
		CacheEntries: 256,
		Budgets: map[canister.CostClass]queryfleet.Budget{
			canister.CostScan: {Rate: 40, Burst: 10},
		},
		SLO: 300 * time.Millisecond,
	}
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFleetLoad(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.Layered.CacheHits == 0 {
			b.Fatal("layered pass never hit the hot cache")
		}
		b.ReportMetric(res.Speedup, "speedup-x")
		b.ReportMetric(100*float64(res.Layered.CacheHits)/float64(res.Layered.Requests), "cache-hit-%")
		b.ReportMetric(float64(res.Layered.P99.Milliseconds()), "p99-ms")
	}
}

// BenchmarkQueryFleetScaling runs the full 1→8 replica sweep (the
// `bench -fig queryfleet` table) once per iteration, reporting the
// 8-replica speedup as a custom metric.
func BenchmarkQueryFleetScaling(b *testing.B) {
	cfg := experiments.DefaultQueryFleetConfig()
	cfg.Window = 300 * time.Millisecond
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunQueryFleet(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last := res.Rows[len(res.Rows)-1]
		b.ReportMetric(last.Speedup, "speedup@8")
		b.ReportMetric(last.QPS, "qps@8")
	}
}

func BenchmarkGetUTXOsDeepPagination(b *testing.B) {
	// Walk an entire 1000-UTXO address in pages of 50: every resume seeks
	// the cursor by binary search in the ordered index, so a full walk is
	// O(pages · (log n + page)) — the pre-index implementation re-sorted
	// the bucket per page and linear-scanned the cursor, making deep walks
	// quadratic.
	f := experiments.NewFeeder(btc.Regtest, 6, 9)
	var h [20]byte
	h[0] = 0x43
	addr := btc.NewP2PKHAddress(h, btc.Regtest)
	script := btc.PayToAddrScript(addr)
	if _, err := f.FeedBlock([]experiments.TxSpec{{Outputs: experiments.PayN(script, 1000, 546)}}); err != nil {
		b.Fatal(err)
	}
	if err := f.FeedEmpty(8); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var token []byte
		pages, total := 0, 0
		for {
			res, err := f.Canister.GetUTXOs(f.QueryCtx(), canister.GetUTXOsArgs{
				Address: addr.String(), Page: token, Limit: 50,
			})
			if err != nil {
				b.Fatal(err)
			}
			pages++
			total += len(res.UTXOs)
			if res.NextPage == nil {
				break
			}
			token = res.NextPage
		}
		if pages != 20 || total != 1000 {
			b.Fatalf("walked %d pages / %d UTXOs", pages, total)
		}
	}
}

func BenchmarkConsensusRound(b *testing.B) {
	sched := simnet.NewScheduler(10)
	cfg := ic.DefaultConfig()
	cfg.DisableThresholdKeys = true
	subnet, err := ic.NewSubnet(sched, cfg)
	if err != nil {
		b.Fatal(err)
	}
	subnet.Start()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sched.RunFor(time.Second) // one consensus round of virtual time
	}
	b.ReportMetric(float64(subnet.Round())/float64(b.N), "rounds/iter")
}

// BenchmarkObsCounterAdd pins the cost of the hot-path metric primitive:
// every instrumented request pays at least one of these, so the gate keeps
// it in the tens-of-nanoseconds regime.
func BenchmarkObsCounterAdd(b *testing.B) {
	reg := obs.NewRegistry()
	c := reg.Counter("bench_counter_total")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

// BenchmarkObsHistogramObserve pins the per-observation cost of the
// fixed-bucket histogram used on every ingest stage and serving layer.
func BenchmarkObsHistogramObserve(b *testing.B) {
	reg := obs.NewRegistry()
	h := reg.Histogram("bench_latency_ns", obs.DurationBuckets)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i%1_000_000) * 1000)
	}
}

func benchTx(rng *rand.Rand, nIn, nOut int) *btc.Transaction {
	tx := &btc.Transaction{Version: 2}
	for i := 0; i < nIn; i++ {
		var op btc.OutPoint
		rng.Read(op.TxID[:])
		tx.Inputs = append(tx.Inputs, btc.TxIn{PreviousOutPoint: op, SignatureScript: make([]byte, 107)})
	}
	var h [20]byte
	for i := 0; i < nOut; i++ {
		rng.Read(h[:])
		tx.Outputs = append(tx.Outputs, btc.TxOut{Value: 546, PkScript: btc.PayToPubKeyHashScript(h)})
	}
	return tx
}
